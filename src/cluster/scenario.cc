#include "cluster/scenario.h"

#include <algorithm>
#include <memory>

#include "cluster/cache_cluster.h"
#include "cluster/router.h"
#include "common/check.h"
#include "hashring/modulo_placement.h"
#include "hashring/proteus_placement.h"
#include "hashring/random_vn_placement.h"
#include "sim/simulation.h"

namespace proteus::cluster {

std::string_view scenario_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kStatic: return "Static";
    case ScenarioKind::kNaive: return "Naive";
    case ScenarioKind::kConsistent: return "Consistent";
    case ScenarioKind::kProteus: return "Proteus";
  }
  return "?";
}

namespace {

std::shared_ptr<const ring::PlacementStrategy> make_placement(
    const ScenarioConfig& cfg) {
  const int n = cfg.cache.num_servers;
  switch (cfg.kind) {
    case ScenarioKind::kStatic:
    case ScenarioKind::kNaive:
      return std::make_shared<ring::ModuloPlacement>(n);
    case ScenarioKind::kConsistent:
      return std::make_shared<ring::RandomVirtualNodePlacement>(
          n, cfg.consistent_vnodes_per_server, cfg.consistent_seed);
    case ScenarioKind::kProteus:
      return std::make_shared<ring::ProteusPlacement>(n);
  }
  PROTEUS_CHECK(false);
  return nullptr;
}

// Snapshot of the cumulative counters we difference per metric slot.
struct TierSnapshot {
  std::vector<std::uint64_t> gets;
  std::uint64_t hits = 0;
  std::uint64_t total_gets = 0;
};

TierSnapshot snapshot_tier(const CacheTier& tier) {
  TierSnapshot s;
  s.gets.reserve(static_cast<std::size_t>(tier.num_servers()));
  for (int i = 0; i < tier.num_servers(); ++i) {
    s.gets.push_back(tier.gets_served(i));
    s.hits += tier.server(i).stats().hits;
    s.total_gets += tier.server(i).stats().gets;
  }
  return s;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  PROTEUS_CHECK(!config.schedule.empty());
  PROTEUS_CHECK(config.slot_length > 0);

  ScenarioConfig cfg = config;
  if (cfg.metric_slot <= 0) cfg.metric_slot = cfg.slot_length / 4;
  if (cfg.kind == ScenarioKind::kStatic) {
    std::fill(cfg.schedule.begin(), cfg.schedule.end(),
              cfg.cache.num_servers);
  }
  for (int n : cfg.schedule) {
    PROTEUS_CHECK(n >= 1 && n <= cfg.cache.num_servers);
  }

  PROTEUS_CHECK(cfg.replicas >= 1);
  sim::Simulation sim;
  db::Database database(sim, cfg.db);
  CacheTier tier(sim, cfg.cache);
  auto placement = make_placement(cfg);
  std::vector<std::shared_ptr<Router>> routers;
  routers.reserve(static_cast<std::size_t>(cfg.replicas));
  for (int r = 0; r < cfg.replicas; ++r) {
    routers.push_back(
        std::make_shared<Router>(placement, cfg.schedule.front(), r));
  }
  auto router = routers.front();
  CacheCluster cluster(
      sim, tier, routers,
      CacheClusterConfig{cfg.kind == ScenarioKind::kProteus, cfg.ttl});
  WebTier web(sim, cfg.web, routers, tier, database);

  for (const auto& crash : cfg.crashes) {
    PROTEUS_CHECK(crash.server >= 0 && crash.server < cfg.cache.num_servers);
    sim.schedule_at(crash.at, [&cluster, server = crash.server] {
      cluster.mark_failed(server);
    });
  }

  workload::RbeConfig rbe_cfg = cfg.rbe;
  rbe_cfg.metric_slot = cfg.metric_slot;
  workload::DiurnalModel model(cfg.diurnal);
  workload::RbeCluster rbe(sim, rbe_cfg, model,
                           [&web](const std::string& key,
                                  std::function<void()> done) {
                             web.handle(key, std::move(done));
                           });

  const SimTime duration =
      static_cast<SimTime>(cfg.schedule.size()) * cfg.slot_length;

  // Provisioning actuations at slot boundaries: either the shared fixed
  // schedule or the closed delay-feedback loop of §VI.
  std::vector<int> applied_schedule;
  applied_schedule.reserve(cfg.schedule.size());
  applied_schedule.push_back(cfg.schedule.front());

  DelayFeedbackPolicy::Config fb = cfg.feedback;
  fb.max_servers = std::min(fb.max_servers, cfg.cache.num_servers);
  DelayFeedbackPolicy feedback(fb,
                               std::clamp(cfg.schedule.front(),
                                          fb.min_servers, fb.max_servers));
  PiDelayFeedbackPolicy::Config pi_fb = cfg.pi_feedback;
  pi_fb.max_servers = std::min(pi_fb.max_servers, cfg.cache.num_servers);
  PiDelayFeedbackPolicy pi_feedback(
      pi_fb, std::clamp(cfg.schedule.front(), pi_fb.min_servers,
                        pi_fb.max_servers));
  const bool closed_loop =
      cfg.use_delay_feedback && cfg.kind != ScenarioKind::kStatic;

  for (std::size_t s = 1; s < cfg.schedule.size(); ++s) {
    const SimTime at = static_cast<SimTime>(s) * cfg.slot_length;
    if (!closed_loop) {
      const int n = cfg.schedule[s];
      sim.schedule_at(at, [&cluster, &applied_schedule, n] {
        applied_schedule.push_back(n);
        cluster.resize(n);
      });
    } else {
      sim.schedule_at(at, [&, s] {
        // p99.9 of the previous provisioning slot, merged from the finer
        // metric-slot histograms the RBE maintains.
        const auto& hists = rbe.slot_histograms();
        const auto per_slot =
            static_cast<std::size_t>(cfg.slot_length / cfg.metric_slot);
        LatencyHistogram window;
        for (std::size_t m = (s - 1) * per_slot;
             m < s * per_slot && m < hists.size(); ++m) {
          window.merge(hists[m]);
        }
        const auto p999 =
            static_cast<SimTime>(window.percentile_us(0.999));
        const int n =
            cfg.feedback_kind == ScenarioConfig::FeedbackKind::kPi
                ? pi_feedback.update(p999)
                : feedback.update(p999);
        applied_schedule.push_back(n);
        cluster.resize(n);
      });
    }
  }

  // Power sampling, every 15 s like the paper's PDU.
  EnergyMeter web_meter(cfg.power_sample_interval);
  EnergyMeter cache_meter(cfg.power_sample_interval);
  EnergyMeter db_meter(cfg.power_sample_interval);
  EnergyMeter cluster_meter(cfg.power_sample_interval);
  std::vector<SimTime> prev_web_busy(
      static_cast<std::size_t>(cfg.web.num_servers), 0);
  std::vector<SimTime> prev_cache_busy(
      static_cast<std::size_t>(cfg.cache.num_servers), 0);
  std::vector<SimTime> prev_db_busy(
      static_cast<std::size_t>(cfg.db.num_shards), 0);

  std::function<void()> sample_power = [&] {
    const SimTime now = sim.now();
    const double interval_slots = static_cast<double>(cfg.power_sample_interval);

    double web_w = 0;
    for (int i = 0; i < cfg.web.num_servers; ++i) {
      const SimTime busy = web.server_queue(i).total_busy_time();
      const double util =
          static_cast<double>(busy - prev_web_busy[static_cast<std::size_t>(i)]) /
          (interval_slots * cfg.web.concurrency);
      prev_web_busy[static_cast<std::size_t>(i)] = busy;
      web_w += cfg.power.watts(true, util);
    }

    double cache_w = 0;
    for (int i = 0; i < cfg.cache.num_servers; ++i) {
      const SimTime busy = tier.queue(i).total_busy_time();
      const double util =
          static_cast<double>(busy - prev_cache_busy[static_cast<std::size_t>(i)]) /
          (interval_slots * cfg.cache.concurrency);
      prev_cache_busy[static_cast<std::size_t>(i)] = busy;
      const bool on =
          tier.server(i).power_state() != cache::PowerState::kOff;
      const ServerPowerProfile& profile =
          static_cast<std::size_t>(i) < cfg.cache_power_profiles.size()
              ? cfg.cache_power_profiles[static_cast<std::size_t>(i)]
              : cfg.power;
      cache_w += profile.watts(on, util);
    }

    double db_w = 0;
    for (int i = 0; i < cfg.db.num_shards; ++i) {
      const SimTime busy = database.shard(i).total_busy_time();
      const double util =
          static_cast<double>(busy - prev_db_busy[static_cast<std::size_t>(i)]) /
          (interval_slots * cfg.db.per_shard_concurrency);
      prev_db_busy[static_cast<std::size_t>(i)] = busy;
      db_w += cfg.power.watts(true, util);
    }

    web_meter.record_sample(now, web_w);
    cache_meter.record_sample(now, cache_w);
    db_meter.record_sample(now, db_w);
    cluster_meter.record_sample(now, web_w + cache_w + db_w);

    if (now + cfg.power_sample_interval <= duration) {
      sim.schedule_after(cfg.power_sample_interval, sample_power);
    }
  };
  sim.schedule_at(cfg.power_sample_interval, sample_power);

  // Per-metric-slot counters: active count and per-server load deltas.
  struct SlotSample {
    int n_active = 0;
    double min_max_ratio = 1.0;
    double hit_ratio = 0.0;
    double db_qps = 0.0;
  };
  std::vector<SlotSample> slot_samples;
  TierSnapshot prev_snap = snapshot_tier(tier);
  std::uint64_t prev_db_queries = 0;

  std::function<void()> sample_slot = [&] {
    const TierSnapshot snap = snapshot_tier(tier);
    SlotSample s;
    s.n_active = router->active();
    s.db_qps = static_cast<double>(database.total_queries() - prev_db_queries) /
               to_seconds(cfg.metric_slot);
    prev_db_queries = database.total_queries();
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (int i = 0; i < s.n_active; ++i) {
      const std::uint64_t load =
          snap.gets[static_cast<std::size_t>(i)] -
          prev_snap.gets[static_cast<std::size_t>(i)];
      lo = std::min(lo, load);
      hi = std::max(hi, load);
    }
    s.min_max_ratio =
        hi == 0 ? 1.0 : static_cast<double>(lo) / static_cast<double>(hi);
    const std::uint64_t dgets = snap.total_gets - prev_snap.total_gets;
    const std::uint64_t dhits = snap.hits - prev_snap.hits;
    s.hit_ratio =
        dgets ? static_cast<double>(dhits) / static_cast<double>(dgets) : 0.0;
    prev_snap = snap;
    slot_samples.push_back(s);
    if (sim.now() + cfg.metric_slot <= duration) {
      sim.schedule_after(cfg.metric_slot, sample_slot);
    }
  };
  sim.schedule_at(cfg.metric_slot, sample_slot);

  rbe.start(duration);
  sim.run_until(duration);
  sim.run();  // drain in-flight requests (no new ones issue past the horizon)

  // ---- assemble the result ----------------------------------------------
  ScenarioResult result;
  result.kind = cfg.kind;
  result.name = std::string(scenario_name(cfg.kind));
  result.total_requests = rbe.completed_requests();
  result.overall_hit_ratio = tier.aggregate_hit_ratio();
  result.db_queries = database.total_queries();
  result.old_server_hits = web.stats().old_server_hits;
  result.replica_hits = web.stats().replica_hits;
  result.coalesced_fetches = web.stats().coalesced_fetches;
  result.digest_false_positives = web.stats().digest_false_positives;
  result.transitions = cluster.transitions_started();
  result.digest_broadcast_bytes = cluster.digest_broadcast_bytes();
  result.overall_p999_ms = rbe.overall_histogram().percentile_us(0.999) / 1e3;
  result.applied_schedule = std::move(applied_schedule);

  result.web_energy_kwh = web_meter.total_energy_kwh();
  result.cache_energy_kwh = cache_meter.total_energy_kwh();
  result.db_energy_kwh = db_meter.total_energy_kwh();
  result.total_energy_kwh = cluster_meter.total_energy_kwh();
  result.cluster_power = cluster_meter.samples();
  result.cache_power = cache_meter.samples();

  const auto& histograms = rbe.slot_histograms();
  const std::size_t slots = slot_samples.size();
  result.slots.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    SlotMetrics m;
    m.start = static_cast<SimTime>(i) * cfg.metric_slot;
    m.n_active = slot_samples[i].n_active;
    m.min_max_load_ratio = slot_samples[i].min_max_ratio;
    m.hit_ratio = slot_samples[i].hit_ratio;
    m.db_qps = slot_samples[i].db_qps;
    if (i < histograms.size()) {
      const LatencyHistogram& h = histograms[i];
      m.requests = h.count();
      m.mean_ms = h.mean_us() / 1e3;
      m.p99_ms = h.percentile_us(0.99) / 1e3;
      m.p999_ms = h.percentile_us(0.999) / 1e3;
      m.max_ms = h.max_us() / 1e3;
      m.bound_violation_frac = h.fraction_at_or_above(
          static_cast<double>(cfg.feedback.bound));
    }
    m.cluster_watts = cluster_meter.mean_watts(
        m.start, m.start + cfg.metric_slot);
    m.cache_watts = cache_meter.mean_watts(m.start, m.start + cfg.metric_slot);
    result.slots.push_back(m);
  }
  return result;
}

ScenarioConfig default_experiment_config(ScenarioKind kind) {
  ScenarioConfig cfg;
  cfg.kind = kind;

  // Time compression: the paper's 33 x 1 h experiment becomes 33 x 2 min of
  // simulated time; the diurnal period compresses identically (24 slots),
  // so the workload shape — and every relative result — is preserved.
  cfg.slot_length = 2 * kMinute;
  cfg.metric_slot = 30 * kSecond;
  cfg.ttl = 40 * kSecond;

  cfg.diurnal.mean_rate = 300.0;
  cfg.diurnal.amplitude = 1.0 / 3.0;  // peak ~2x valley, as in the trace
  cfg.diurnal.period = 24 * cfg.slot_length;
  cfg.diurnal.phase = 9 * cfg.slot_length;
  cfg.diurnal.jitter = 0.05;
  cfg.diurnal.jitter_slot = cfg.slot_length;

  cfg.rbe.num_pages = 200'000;
  cfg.rbe.zipf_alpha = 0.9;
  cfg.rbe.pages_per_user = 50;
  cfg.rbe.think_time_sec = 0.5;
  // Exponential sessions (§V-1), compressed like the rest of the clock:
  // the working set churns gently across the run.
  cfg.rbe.mean_session_sec = 300.0;

  // Sized so aggregate capacity under the schedule tracks the hot working
  // set (the paper's 1 GB/server vs the wiki hot set): ~85-95% hit ratio.
  cfg.cache.num_servers = 10;
  cfg.cache.per_server.memory_budget_bytes = 4u << 20;
  cfg.web.num_servers = 10;
  // Seek-dominated page->revision->text lookups (§V-4): aggregate capacity
  // ~230 q/s, far below the request peak — a cache-miss storm therefore
  // overloads the database tier exactly as on the paper's testbed.
  cfg.db.num_shards = 7;
  cfg.db.per_shard_concurrency = 1;
  cfg.db.base_service_time = 15 * kMillisecond;
  cfg.db.service_jitter_mean = 15 * kMillisecond;

  // Shared schedule from the rate-proportional policy (Fig. 4 circles).
  workload::DiurnalModel model(cfg.diurnal);
  RateProportionalPolicy policy;
  policy.per_server_capacity_rps = 43.0;
  policy.min_servers = 1;
  policy.max_servers = cfg.cache.num_servers;
  cfg.schedule = rate_proportional_schedule(
      model, 33 * cfg.slot_length, cfg.slot_length, policy);
  return cfg;
}

}  // namespace proteus::cluster
