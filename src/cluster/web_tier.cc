#include "cluster/web_tier.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace proteus::cluster {

WebTier::WebTier(sim::Simulation& sim, WebTierConfig config,
                 std::vector<std::shared_ptr<Router>> routers,
                 CacheTier& cache, db::Database& db)
    : sim_(sim),
      config_(config),
      routers_(std::move(routers)),
      cache_(cache),
      db_(db),
      migration_throttle_(config.migration_throttle) {
  PROTEUS_CHECK(!routers_.empty());
  for (const auto& router : routers_) PROTEUS_CHECK(router != nullptr);
  PROTEUS_CHECK(config_.num_servers >= 1);
  queues_.reserve(static_cast<std::size_t>(config_.num_servers));
  for (int i = 0; i < config_.num_servers; ++i) {
    queues_.push_back(std::make_unique<sim::QueueingServer>(
        sim_, "web-" + std::to_string(i), config_.concurrency));
  }
}

bool WebTier::server_alive(int server) const {
  return cache_.server(server).power_state() != cache::PowerState::kOff;
}

bool WebTier::migration_allowed() {
  if (config_.overload_db_queue_depth <= 0) return true;
  std::size_t depth = 0;
  for (int i = 0; i < db_.num_shards(); ++i) {
    depth = std::max(depth, db_.shard(i).queue_depth());
  }
  migration_throttle_.set_overloaded(
      depth >= static_cast<std::size_t>(config_.overload_db_queue_depth));
  return migration_throttle_.allow(sim_.now());
}

void WebTier::trace_child(const Trace& trace, obs::SpanKind kind, int server,
                          obs::SpanCause cause, std::string_view key) {
  if (trace != nullptr && trace->active()) {
    trace->child(sim_.now(), kind, server, cause, key);
  }
}

void WebTier::handle(const std::string& key, std::function<void()> done) {
  ++stats_.requests;
  const std::size_t web = next_server_++ % queues_.size();
  Trace trace;
  if (config_.spans != nullptr) {
    obs::TraceContext ctx = obs::TraceContext::begin(config_.spans, sim_.now());
    if (ctx.active()) {
      ctx.in_transition = routers_.front()->in_transition();
      trace = std::make_shared<obs::TraceContext>(ctx);
      // Close the trace when the response reaches the client: the final
      // reply hop lands in the closing kRespond child.
      done = [this, trace, start = sim_.now(), key,
              done = std::move(done)]() mutable {
        trace->finish(sim_.now(), start, key);
        done();
      };
    }
  }
  // RBE -> web hop, then servlet service, then the retrieval procedure.
  sim_.schedule_after(config_.rbe_hop_latency, [this, web, key, trace,
                                                done = std::move(done)]() mutable {
    trace_child(trace, obs::SpanKind::kHop, static_cast<int>(web));
    queues_[web]->submit(config_.service_time,
                         [this, web, key, trace = std::move(trace),
                          done = std::move(done)]() mutable {
                           trace_child(trace, obs::SpanKind::kWebService,
                                       static_cast<int>(web));
                           fetch_data(key, std::move(trace), std::move(done));
                         });
  });
}

void WebTier::respond_after_hop(std::function<void()> done) {
  sim_.schedule_after(config_.rbe_hop_latency, std::move(done));
}

// Algorithm 2: FETCH_DATA(key_d), generalized over the replica rings.
void WebTier::fetch_data(const std::string& key, Trace trace,
                         std::function<void()> done) {
  try_ring(0, std::make_shared<std::vector<int>>(), key, std::move(trace),
           std::move(done));
}

void WebTier::repair_and_respond(
    const std::shared_ptr<std::vector<int>>& repair, const std::string& key,
    const std::string& value, std::function<void()> done) {
  // Line 12 generalized: re-populate every live replica location that
  // missed on the way here (fire-and-forget).
  for (int server : *repair) {
    if (server_alive(server)) {
      cache_.async_set(server, key, value, db_.object_size());
    }
  }
  respond_after_hop(std::move(done));
}

void WebTier::fetch_from_db(std::shared_ptr<std::vector<int>> repair,
                            const std::string& key, Trace trace,
                            std::function<void()> done) {
  // Dog-pile coalescing: if a query for this key is already in flight,
  // piggyback on it — the first fetch populates the caches, so this
  // request's response is complete the moment that query returns.
  if (config_.coalesce_db_fetches) {
    auto it = inflight_db_.find(key);
    if (it != inflight_db_.end()) {
      ++stats_.coalesced_fetches;
      it->second.push_back([this, trace = std::move(trace), key,
                            done = std::move(done)]() mutable {
        // The wait on someone else's in-flight query is still db time.
        trace_child(trace, obs::SpanKind::kBackendFetch, -1,
                    obs::SpanCause::kBackendFill, key);
        if (trace != nullptr) trace->root_cause = obs::SpanCause::kBackendFill;
        respond_after_hop(std::move(done));
      });
      return;
    }
    inflight_db_.emplace(key, std::vector<std::function<void()>>{});
  }

  // Line 10: false positive or "cold" data — reach the database tier. The
  // database never notices the transition (§IV-A).
  ++stats_.db_fetches;
  db_.async_get(key, [this, repair = std::move(repair), key,
                      trace = std::move(trace),
                      done = std::move(done)](std::string db_value) mutable {
    trace_child(trace, obs::SpanKind::kBackendFetch, -1,
                obs::SpanCause::kBackendFill, key);
    if (trace != nullptr) trace->root_cause = obs::SpanCause::kBackendFill;
    // Populate the replica chain's primaries with the fetched value.
    for (const auto& router : routers_) {
      const int primary = router->decide(key).primary;
      if (std::find(repair->begin(), repair->end(), primary) ==
          repair->end()) {
        repair->push_back(primary);
      }
    }
    repair_and_respond(repair, key, db_value, std::move(done));
    if (config_.coalesce_db_fetches) {
      // Release the piggybacked requests.
      auto it = inflight_db_.find(key);
      if (it != inflight_db_.end()) {
        auto waiters = std::move(it->second);
        inflight_db_.erase(it);
        for (auto& waiter : waiters) waiter();
      }
    }
  });
}

void WebTier::try_ring(std::size_t ring,
                       std::shared_ptr<std::vector<int>> repair,
                       const std::string& key, Trace trace,
                       std::function<void()> done) {
  if (ring >= routers_.size()) {
    fetch_from_db(std::move(repair), key, std::move(trace), std::move(done));
    return;
  }
  const Router::Decision d = routers_[ring]->decide(key);
  // Ring 0 is the normal path; rings >= 1 are §III-E failover fetches.
  const obs::SpanKind fetch_kind =
      ring == 0 ? obs::SpanKind::kCacheGet : obs::SpanKind::kFailover;
  if (!server_alive(d.primary)) {
    // Crashed/powered-off ring: fail over to the next replica (§III-E).
    ++stats_.failed_server_skips;
    trace_child(trace, fetch_kind, d.primary, obs::SpanCause::kDown, key);
    try_ring(ring + 1, std::move(repair), key, std::move(trace),
             std::move(done));
    return;
  }

  // Line 2: data <- s_{m_{t+1}}.get(key) on this ring.
  cache_.async_get(d.primary, key, [this, ring, d, fetch_kind,
                                    repair = std::move(repair), key,
                                    trace = std::move(trace),
                                    done = std::move(done)](
                                       std::optional<std::string> value) mutable {
    if (value.has_value()) {
      trace_child(trace, fetch_kind, d.primary, obs::SpanCause::kHit, key);
      if (trace != nullptr) {
        trace->root_cause = ring == 0 ? obs::SpanCause::kHit
                                      : obs::SpanCause::kFailoverHit;
      }
      if (ring == 0) {
        ++stats_.new_server_hits;  // line 4: found in new server
      } else {
        ++stats_.replica_hits;     // served by a surviving replica
      }
      repair_and_respond(repair, key, *value, std::move(done));
      return;
    }
    trace_child(trace, fetch_kind, d.primary, obs::SpanCause::kMiss, key);

    if (d.fallback < 0 || !server_alive(d.fallback)) {
      repair->push_back(d.primary);
      try_ring(ring + 1, std::move(repair), key, std::move(trace),
               std::move(done));
      return;
    }

    // Lines 6-8: the digest said the data is "hot" on this ring's old
    // location.
    cache_.async_get(
        d.fallback, key,
        [this, ring, d, repair = std::move(repair), key,
         trace = std::move(trace),
         done = std::move(done)](std::optional<std::string> old_value) mutable {
          if (old_value.has_value()) {
            ++stats_.old_server_hits;
            trace_child(trace, obs::SpanKind::kMigrationFetch, d.fallback,
                        obs::SpanCause::kHit, key);
            if (trace != nullptr) {
              trace->root_cause = obs::SpanCause::kOldHit;
            }
            // Line 12: migrate on demand (the primary is in the repair
            // set); only the FIRST request pays this hop (§IV-A prop. 1).
            // Under overload the store is deferred — the value stays on
            // the draining server, a later allowed hit migrates it.
            if (migration_allowed()) {
              repair->push_back(d.primary);
            } else {
              ++stats_.migrations_deferred;
              trace_child(trace, obs::SpanKind::kMigrationStore, d.primary,
                          obs::SpanCause::kThrottled, key);
            }
            repair_and_respond(repair, key, *old_value, std::move(done));
            return;
          }
          ++stats_.digest_false_positives;  // line 9: Bloom false positive
          trace_child(trace, obs::SpanKind::kMigrationFetch, d.fallback,
                      obs::SpanCause::kMiss, key);
          repair->push_back(d.primary);
          try_ring(ring + 1, std::move(repair), key, std::move(trace),
                   std::move(done));
        });
  });
}

void WebTier::audit_observe(SimTime now) {
  if (config_.auditor == nullptr) return;
  const int n = cache_.num_servers();
  std::vector<obs::ServerAuditSample> fleet(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const cache::CacheServer& s = cache_.server(i);
    auto& sample = fleet[static_cast<std::size_t>(i)];
    sample.power_state = static_cast<int>(s.power_state());
    // gets_served counts routed requests (including those a draining server
    // absorbed); the server's own stats supply the hit side.
    sample.gets_total = static_cast<double>(cache_.gets_served(i));
    sample.hits_total = static_cast<double>(s.stats().hits);
  }
  config_.auditor->observe(now, fleet, 0,
                           static_cast<double>(stats_.db_fetches));
}

void WebTier::register_metrics(obs::MetricsRegistry& registry) const {
  const auto stat = [this, &registry](std::string name, std::string help,
                                      auto getter) {
    registry.counter_fn(std::move(name), std::move(help),
                        [this, getter]() -> double {
                          return static_cast<double>(getter(stats_));
                        });
  };
  stat("proteus_webtier_requests_total", "user requests handled",
       [](const WebTierStats& s) { return s.requests; });
  stat("proteus_webtier_new_server_hits_total",
       "Algorithm 2 line 3 hits on the current mapping",
       [](const WebTierStats& s) { return s.new_server_hits; });
  stat("proteus_webtier_old_server_hits_total",
       "line 7 hot-data migrations",
       [](const WebTierStats& s) { return s.old_server_hits; });
  stat("proteus_webtier_replica_hits_total",
       "served by a SS III-E failover ring",
       [](const WebTierStats& s) { return s.replica_hits; });
  stat("proteus_webtier_failed_server_skips_total",
       "rings skipped because the server was powered off",
       [](const WebTierStats& s) { return s.failed_server_skips; });
  stat("proteus_webtier_db_fetches_total", "line 10 database queries issued",
       [](const WebTierStats& s) { return s.db_fetches; });
  stat("proteus_webtier_coalesced_fetches_total",
       "requests piggybacked on an in-flight query (dog-pile)",
       [](const WebTierStats& s) { return s.coalesced_fetches; });
  stat("proteus_webtier_digest_false_positives_total",
       "line 6 said hot, line 7 missed (SS IV-B p_p)",
       [](const WebTierStats& s) { return s.digest_false_positives; });
  stat("proteus_webtier_migrations_deferred_total",
       "line-12 stores deferred by the overload migration throttle",
       [](const WebTierStats& s) { return s.migrations_deferred; });
  registry.gauge_fn("proteus_webtier_cache_hit_ratio",
                    "fraction of requests served from the cache tier",
                    [this] { return stats_.cache_hit_ratio(); });
}

}  // namespace proteus::cluster
