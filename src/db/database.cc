#include "db/database.h"

#include <algorithm>

#include "common/check.h"

namespace proteus::db {

Database::Database(sim::Simulation& sim, DbConfig config)
    : sim_(sim), config_(config), rng_(config.seed) {
  PROTEUS_CHECK(config_.num_shards >= 1);
  shards_.reserve(static_cast<std::size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<sim::QueueingServer>(
        sim_, "db-shard-" + std::to_string(i), config_.per_shard_concurrency));
  }
}

void Database::async_get(std::string_view key,
                         std::function<void(std::string)> done) {
  ++total_queries_;
  const int shard = shard_for(key);
  const SimTime service =
      config_.base_service_time +
      from_seconds(rng_.next_exponential(to_seconds(config_.service_jitter_mean)));
  std::string value = value_for(key);
  shards_[static_cast<std::size_t>(shard)]->submit(
      service, [done = std::move(done), value = std::move(value)]() mutable {
        done(std::move(value));
      });
}

std::string Database::value_for(std::string_view key) const {
  // Deterministic page body derived from the key; stands in for the
  // old_text column the paper's final SELECT returns.
  std::string out = "wiki:";
  out.append(key);
  out += ":rev";
  out += std::to_string(hash_bytes(key, config_.seed ^ 0xfeed) % 1000000);
  return out;
}

std::size_t Database::max_queue_depth() const {
  std::size_t m = 0;
  for (const auto& s : shards_) m = std::max(m, s->max_queue_depth());
  return m;
}

double Database::mean_utilization() const {
  double total = 0;
  for (const auto& s : shards_) total += s->utilization();
  return total / static_cast<double>(shards_.size());
}

}  // namespace proteus::db
