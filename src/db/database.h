// Sharded database tier simulator — substitutes the paper's 7 MySQL shards
// holding the Wikipedia dump (§V-4).
//
// What the experiments need from the database is (a) deterministic content
// for any key, (b) realistic miss latency (the page -> revision -> text
// triple lookup, seek-dominated), and (c) overload behaviour: each shard has
// bounded concurrency, so a cache-miss storm builds queues and response
// times explode — the mechanism behind the Fig. 9 Naive spikes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/queueing_server.h"
#include "sim/simulation.h"

namespace proteus::db {

struct DbConfig {
  int num_shards = 7;
  // InnoDB-ish: a few parallel query slots per shard.
  int per_shard_concurrency = 2;
  // Service time = base + Exp(jitter_mean): three index lookups worth of
  // page->latest->text traversal (§V-4), seek dominated.
  SimTime base_service_time = 6 * kMillisecond;
  SimTime service_jitter_mean = 6 * kMillisecond;
  // Logical object size (the paper's fixed-size cache unit, 4 KB pages).
  std::size_t object_size = 4096;
  std::uint64_t seed = 42;
};

class Database {
 public:
  Database(sim::Simulation& sim, DbConfig config);

  // Asynchronous lookup through the shard's queue; `done` receives the
  // deterministic value for the key once service completes.
  void async_get(std::string_view key, std::function<void(std::string)> done);

  // Synchronous variant for the non-simulated library facade and examples.
  std::string get(std::string_view key) const { return value_for(key); }

  // Deterministic synthetic page content (stands in for the wiki dump).
  // Short payload; object_size() is the accounting charge for the cache.
  std::string value_for(std::string_view key) const;

  int shard_for(std::string_view key) const noexcept {
    return static_cast<int>(hash_bytes(key, config_.seed) %
                            static_cast<std::uint64_t>(config_.num_shards));
  }

  std::size_t object_size() const noexcept { return config_.object_size; }
  int num_shards() const noexcept { return config_.num_shards; }
  std::uint64_t total_queries() const noexcept { return total_queries_; }
  const sim::QueueingServer& shard(int i) const { return *shards_.at(static_cast<std::size_t>(i)); }

  std::size_t max_queue_depth() const;
  double mean_utilization() const;

 private:
  sim::Simulation& sim_;
  DbConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<sim::QueueingServer>> shards_;
  std::uint64_t total_queries_ = 0;
};

}  // namespace proteus::db
