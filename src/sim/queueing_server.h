// A queueing station: `concurrency` parallel service slots plus an unbounded
// FIFO queue. Models both database shards (few slots, long seek-dominated
// service times — the component whose overload produces the Fig. 9 delay
// spikes) and web/cache servers (many slots, short service times).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "common/check.h"
#include "sim/simulation.h"

namespace proteus::sim {

class QueueingServer {
 public:
  using Callback = std::function<void()>;

  QueueingServer(Simulation& sim, std::string name, int concurrency)
      : sim_(sim), name_(std::move(name)), concurrency_(concurrency) {
    PROTEUS_CHECK(concurrency_ > 0);
  }

  // Enqueue a job needing `service_time`; `done` fires when service ends.
  void submit(SimTime service_time, Callback done) {
    PROTEUS_CHECK(service_time >= 0);
    ++arrivals_;
    if (in_service_ < concurrency_) {
      start(service_time, std::move(done));
    } else {
      queue_.push_back(Job{service_time, std::move(done), sim_.now()});
      max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
    }
  }

  // --- instrumentation ---------------------------------------------------
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }
  int in_service() const noexcept { return in_service_; }
  std::uint64_t arrivals() const noexcept { return arrivals_; }
  std::uint64_t completions() const noexcept { return completions_; }
  SimTime total_busy_time() const noexcept { return busy_time_; }
  SimTime total_wait_time() const noexcept { return wait_time_; }
  const std::string& name() const noexcept { return name_; }

  // Utilisation over [0, now]: busy slot-time / (slots * elapsed).
  double utilization() const noexcept {
    const SimTime elapsed = sim_.now();
    if (elapsed <= 0) return 0.0;
    return static_cast<double>(busy_time_) /
           (static_cast<double>(concurrency_) * static_cast<double>(elapsed));
  }

 private:
  struct Job {
    SimTime service_time;
    Callback done;
    SimTime enqueued_at;
  };

  void start(SimTime service_time, Callback done) {
    ++in_service_;
    busy_time_ += service_time;
    sim_.schedule_after(service_time,
                        [this, done = std::move(done)]() mutable {
                          finish(std::move(done));
                        });
  }

  void finish(Callback done) {
    --in_service_;
    ++completions_;
    if (!queue_.empty()) {
      Job next = std::move(queue_.front());
      queue_.pop_front();
      wait_time_ += sim_.now() - next.enqueued_at;
      start(next.service_time, std::move(next.done));
    }
    done();
  }

  Simulation& sim_;
  std::string name_;
  int concurrency_;
  int in_service_ = 0;
  std::deque<Job> queue_;
  std::size_t max_queue_depth_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t completions_ = 0;
  SimTime busy_time_ = 0;
  SimTime wait_time_ = 0;
};

}  // namespace proteus::sim
