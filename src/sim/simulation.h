// Minimal deterministic discrete-event simulator.
//
// The paper evaluates on a 40-machine testbed; this repo substitutes a DES
// of the same topology (see DESIGN.md). The simulator is single-threaded and
// fully deterministic: events at equal timestamps fire in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace proteus::sim {

class Simulation {
 public:
  using Callback = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  void schedule_at(SimTime when, Callback cb) {
    PROTEUS_CHECK_MSG(when >= now_, "cannot schedule into the past");
    queue_.push(Event{when, next_seq_++, std::move(cb)});
  }

  void schedule_after(SimTime delay, Callback cb) {
    PROTEUS_CHECK(delay >= 0);
    schedule_at(now_ + delay, std::move(cb));
  }

  // Runs events until the queue drains or the horizon is passed. Events
  // scheduled exactly at the horizon still run; later ones stay queued.
  void run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.top().when <= horizon) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      ev.cb();
    }
    now_ = std::max(now_, horizon);
  }

  void run() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      ev.cb();
    }
  }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    Callback cb;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace proteus::sim
