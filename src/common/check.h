// Invariant checking that stays on in release builds.
//
// Simulation bugs silently corrupt results, so precondition violations abort
// with a message rather than relying on NDEBUG-sensitive assert().
#pragma once

#include <cstdio>
#include <cstdlib>

#define PROTEUS_CHECK(cond)                                                   \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PROTEUS_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define PROTEUS_CHECK_MSG(cond, msg)                                          \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PROTEUS_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                                  \
      std::abort();                                                           \
    }                                                                         \
  } while (0)
