// Deterministic random number generation and the samplers used by the
// workload generator: Zipf page popularity, exponential session lengths and
// think times, Poisson arrivals.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace proteus {

// xoshiro256**-class generator seeded via SplitMix64. Deterministic across
// platforms (unlike std::mt19937_64 + std::uniform distributions, whose
// library implementations may differ).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    // Lemire's multiply-shift rejection-free variant is overkill here; a
    // 128-bit multiply keeps bias below 2^-64 which is fine for simulation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool next_bool(double p_true) noexcept { return next_double() < p_true; }

  double next_exponential(double mean) noexcept {
    assert(mean > 0);
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log1p(-u);
  }

  // Fork a statistically independent stream, e.g. one per simulated user.
  Rng fork(std::uint64_t stream_id) noexcept {
    return Rng(hash_combine(next_u64(), stream_id));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

// Zipf(α) sampler over {0, 1, ..., n-1} where rank 0 is the most popular.
// Uses rejection-inversion (Hörmann's method) so construction is O(1) and
// sampling is O(1) expected, which matters for multi-million-page corpora.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha)
      : n_(n), alpha_(alpha) {
    assert(n >= 1);
    assert(alpha > 0.0);
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -alpha_));
  }

  std::size_t operator()(Rng& rng) const noexcept {
    // Hörmann rejection-inversion; expected < 1.1 iterations.
    for (;;) {
      const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
      const double x = h_inv(u);
      double k = std::floor(x + 0.5);
      if (k < 1.0) k = 1.0;
      if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
      if (k - x <= s_ || u >= h(k + 0.5) - std::pow(k, -alpha_)) {
        return static_cast<std::size_t>(k) - 1;
      }
    }
  }

  std::size_t n() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }

 private:
  // H(x) = integral of x^-alpha; handles alpha == 1 via the log branch.
  double h(double x) const noexcept {
    if (std::abs(alpha_ - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
  }

  double h_inv(double u) const noexcept {
    if (std::abs(alpha_ - 1.0) < 1e-12) return std::exp(u);
    return std::pow(1.0 + u * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
  }

  std::size_t n_;
  double alpha_;
  double h_x1_{};
  double h_n_{};
  double s_{};
};

}  // namespace proteus
