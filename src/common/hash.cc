#include "common/hash.h"

namespace proteus {

namespace {

inline std::uint64_t load_u64(const char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t rotl(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

}  // namespace

std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) noexcept {
  constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
  constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
  constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;

  std::uint64_t h = seed ^ (bytes.size() * kPrime1);
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    h ^= rotl(load_u64(p) * kPrime2, 31) * kPrime1;
    h = rotl(h, 27) * kPrime1 + kPrime3;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tail = (tail << 8) | static_cast<unsigned char>(p[i]);
  }
  h ^= splitmix64(tail + n);
  return splitmix64(h);
}

}  // namespace proteus
