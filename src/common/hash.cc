#include "common/hash.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define PROTEUS_CRC32C_X86 1
#endif

namespace proteus {

namespace {

inline std::uint64_t load_u64(const char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t rotl(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

}  // namespace

std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) noexcept {
  constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
  constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
  constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;

  std::uint64_t h = seed ^ (bytes.size() * kPrime1);
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    h ^= rotl(load_u64(p) * kPrime2, 31) * kPrime1;
    h = rotl(h, 27) * kPrime1 + kPrime3;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tail = (tail << 8) | static_cast<unsigned char>(p[i]);
  }
  h ^= splitmix64(tail + n);
  return splitmix64(h);
}

// ---------------------------------------------------------------------------
// CRC32C.
//
// Reflected Castagnoli CRC. The register convention throughout is the usual
// reflected one where "multiply by x" is (s >> 1) ^ (s & 1 ? kPolyRefl : 0);
// all fold constants are derived from x^n mod P at static-init time rather
// than baked in as magic numbers, so the clmul kernels carry no unexplained
// hex. hash_test cross-checks every dispatch path against the portable
// slicing-by-8 implementation on random buffers of every size class.

namespace {

constexpr std::uint32_t kCrc32cPolyRefl = 0x82F63B78u;

// x^e mod P in the reflected register convention (bit 31-k <-> x^k).
std::uint32_t crc32c_xpow(unsigned e) noexcept {
  std::uint32_t s = 0x80000000u;  // x^0
  while (e--) s = (s >> 1) ^ ((s & 1) ? kCrc32cPolyRefl : 0);
  return s;
}

// Slicing-by-8 tables. table[0] is the classic byte table; table[k] maps a
// byte processed k positions earlier, so eight lookups retire 8 bytes.
struct Crc32cTables {
  std::uint32_t t[8][256];
  Crc32cTables() noexcept {
    for (unsigned i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) c = (c >> 1) ^ ((c & 1) ? kCrc32cPolyRefl : 0);
      t[0][i] = c;
    }
    for (unsigned k = 1; k < 8; ++k) {
      for (unsigned i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
  }
};

const Crc32cTables& crc32c_tables() noexcept {
  static const Crc32cTables tables;
  return tables;
}

inline std::uint32_t load_u32(const char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Portable path: slicing-by-8. `crc` is the raw register (init already
// applied by the caller).
std::uint32_t crc32c_sw(const char* p, std::size_t n,
                        std::uint32_t crc) noexcept {
  const Crc32cTables& tb = crc32c_tables();
  while (n >= 8) {
    const std::uint32_t lo = load_u32(p) ^ crc;
    const std::uint32_t hi = load_u32(p + 4);
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ static_cast<unsigned char>(*p++)) & 0xff];
  }
  return crc;
}

#if PROTEUS_CRC32C_X86

// SSE4.2 path: the crc32 instruction, 8 bytes per op.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    const char* p, std::size_t n, std::uint32_t crc) noexcept {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    c = _mm_crc32_u64(c, v);
    p += 8;
    n -= 8;
  }
  crc = static_cast<std::uint32_t>(c);
  while (n--) {
    crc = _mm_crc32_u8(crc, static_cast<unsigned char>(*p++));
  }
  return crc;
}

// Fold constants: multiplying a 128-bit chunk forward by D bytes needs the
// clmul pair (x^(8D+32), x^(8D-32)), each shifted left one bit to absorb
// the reflected-clmul off-by-one. Derived empirically against the bitwise
// oracle and locked in by hash_test.
struct Crc32cFoldK {
  std::uint64_t lo, hi;
};

Crc32cFoldK crc32c_fold_k(unsigned dist_bytes) noexcept {
  return Crc32cFoldK{
      static_cast<std::uint64_t>(crc32c_xpow(8 * dist_bytes + 32)) << 1,
      static_cast<std::uint64_t>(crc32c_xpow(8 * dist_bytes - 32)) << 1};
}

struct Crc32cAvxConsts {
  Crc32cFoldK loop;      // fold by 256 bytes (4-accumulator stride)
  Crc32cFoldK z192;      // compress A0..A3 -> one register
  Crc32cFoldK z128;
  Crc32cFoldK z64;
  Crc32cFoldK lane48;    // compress the four 16-byte lanes -> 128 bits
  Crc32cFoldK lane32;
  Crc32cFoldK lane16;
  Crc32cAvxConsts() noexcept
      : loop(crc32c_fold_k(256)),
        z192(crc32c_fold_k(192)),
        z128(crc32c_fold_k(128)),
        z64(crc32c_fold_k(64)),
        lane48(crc32c_fold_k(48)),
        lane32(crc32c_fold_k(32)),
        lane16(crc32c_fold_k(16)) {}
};

const Crc32cAvxConsts& crc32c_avx_consts() noexcept {
  static const Crc32cAvxConsts consts;
  return consts;
}

#define PROTEUS_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512vl,vpclmulqdq,sse4.2")))

PROTEUS_TARGET_AVX512 inline __m512i crc32c_fold_pair(
    std::uint64_t lo, std::uint64_t hi) noexcept {
  return _mm512_set_epi64(
      static_cast<long long>(hi), static_cast<long long>(lo),
      static_cast<long long>(hi), static_cast<long long>(lo),
      static_cast<long long>(hi), static_cast<long long>(lo),
      static_cast<long long>(hi), static_cast<long long>(lo));
}

PROTEUS_TARGET_AVX512 inline __m512i crc32c_fold512(__m512i acc,
                                                    __m512i k) noexcept {
  return _mm512_xor_si512(_mm512_clmulepi64_epi128(acc, k, 0x00),
                          _mm512_clmulepi64_epi128(acc, k, 0x11));
}

// AVX-512 + VPCLMULQDQ path: four 512-bit accumulators folding 256 bytes
// per iteration (~0.07 cycles/byte), the workhorse behind the <=30 ns/KiB
// verify budget on the GET path. Invariant: the accumulators always hold a
// literal 256-byte message whose CRC equals the CRC of everything consumed
// so far, so the final reduction is plain folds plus two crc32 ops.
PROTEUS_TARGET_AVX512
std::uint32_t crc32c_avx(const char* p, std::size_t n,
                         std::uint32_t crc) noexcept {
  if (n < 512) return crc32c_hw(p, n, crc);
  const Crc32cAvxConsts& K = crc32c_avx_consts();
  const auto fold_pair = crc32c_fold_pair;
  const auto fold = crc32c_fold512;
  __m512i a0 = _mm512_loadu_si512(p);
  __m512i a1 = _mm512_loadu_si512(p + 64);
  __m512i a2 = _mm512_loadu_si512(p + 128);
  __m512i a3 = _mm512_loadu_si512(p + 192);
  // Fold the init register into the first four message bytes.
  a0 = _mm512_xor_si512(
      a0, _mm512_zextsi128_si512(_mm_cvtsi32_si128(static_cast<int>(crc))));
  p += 256;
  n -= 256;
  const __m512i kloop = fold_pair(K.loop.lo, K.loop.hi);
  while (n >= 256) {
    a0 = _mm512_xor_si512(_mm512_loadu_si512(p), fold(a0, kloop));
    a1 = _mm512_xor_si512(_mm512_loadu_si512(p + 64), fold(a1, kloop));
    a2 = _mm512_xor_si512(_mm512_loadu_si512(p + 128), fold(a2, kloop));
    a3 = _mm512_xor_si512(_mm512_loadu_si512(p + 192), fold(a3, kloop));
    p += 256;
    n -= 256;
  }
  // Compress the four accumulators into one 512-bit register...
  __m512i z = _mm512_xor_si512(
      _mm512_xor_si512(fold(a0, fold_pair(K.z192.lo, K.z192.hi)),
                       fold(a1, fold_pair(K.z128.lo, K.z128.hi))),
      _mm512_xor_si512(fold(a2, fold_pair(K.z64.lo, K.z64.hi)), a3));
  // ...then its four 16-byte lanes into one 128-bit value. Lane 3 folds by
  // zero bytes, i.e. passes through.
  const __m512i klane = _mm512_set_epi64(
      0, 0, static_cast<long long>(K.lane16.hi),
      static_cast<long long>(K.lane16.lo), static_cast<long long>(K.lane32.hi),
      static_cast<long long>(K.lane32.lo), static_cast<long long>(K.lane48.hi),
      static_cast<long long>(K.lane48.lo));
  const __m512i zf = fold(z, klane);
  // Lane 3 folds by zero bytes: its clmul constant is zero, so XOR the
  // original lane back in unchanged.
  __m128i v = _mm_xor_si128(
      _mm_xor_si128(_mm512_extracti32x4_epi32(zf, 0),
                    _mm512_extracti32x4_epi32(zf, 1)),
      _mm_xor_si128(_mm512_extracti32x4_epi32(zf, 2),
                    _mm512_extracti32x4_epi32(z, 3)));
  std::uint64_t c = _mm_crc32_u64(0, static_cast<std::uint64_t>(
                                         _mm_cvtsi128_si64(v)));
  c = _mm_crc32_u64(c, static_cast<std::uint64_t>(
                           _mm_extract_epi64(v, 1)));
  return crc32c_hw(p, n, static_cast<std::uint32_t>(c));
}

#endif  // PROTEUS_CRC32C_X86

using Crc32cFn = std::uint32_t (*)(const char*, std::size_t,
                                   std::uint32_t) noexcept;

Crc32cFn crc32c_resolve() noexcept {
#if PROTEUS_CRC32C_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("vpclmulqdq") &&
      __builtin_cpu_supports("sse4.2")) {
    (void)crc32c_avx_consts();  // build fold constants before first use
    return &crc32c_avx;
  }
  if (__builtin_cpu_supports("sse4.2")) return &crc32c_hw;
#endif
  (void)crc32c_tables();
  return &crc32c_sw;
}

}  // namespace

std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed) noexcept {
  static const Crc32cFn fn = crc32c_resolve();
  return ~fn(bytes.data(), bytes.size(), ~seed);
}

}  // namespace proteus
