// Simulated-time representation.
//
// All simulation time is carried as integer microseconds to keep event
// ordering exact (no floating-point tie ambiguity in the event queue).
#pragma once

#include <cstdint>

namespace proteus {

using SimTime = std::int64_t;  // microseconds since simulation start

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1'000;
constexpr SimTime kSecond = 1'000'000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

}  // namespace proteus
