// Log-bucketed latency histogram with percentile queries.
//
// The evaluation plots p99.9 response time (Fig. 9), which requires a
// percentile estimator with bounded relative error over a wide dynamic range
// (sub-millisecond cache hits up to multi-second database-overload queueing).
// An HdrHistogram-style layout gives <= ~0.8% relative error per bucket with
// a few KB of memory and O(1) record.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace proteus {

class LatencyHistogram {
 public:
  // Values are recorded in microseconds; range [1us, ~1.2e6 s].
  LatencyHistogram() : counts_(kNumBuckets, 0) {}

  void record(double value_us) noexcept {
    if (value_us < 1.0) value_us = 1.0;
    ++counts_[bucket_index(value_us)];
    ++total_;
    sum_us_ += value_us;
    max_us_ = std::max(max_us_, value_us);
    min_us_ = std::min(min_us_, value_us);
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_us_ += other.sum_us_;
    max_us_ = std::max(max_us_, other.max_us_);
    min_us_ = std::min(min_us_, other.min_us_);
  }

  void clear() noexcept {
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_us_ = 0;
    max_us_ = 0;
    min_us_ = 1e300;
  }

  std::uint64_t count() const noexcept { return total_; }
  double mean_us() const noexcept { return total_ ? sum_us_ / static_cast<double>(total_) : 0.0; }
  double mean() const noexcept { return mean_us(); }
  double max_us() const noexcept { return total_ ? max_us_ : 0.0; }
  double min_us() const noexcept { return total_ ? min_us_ : 0.0; }

  // Number of recorded values >= threshold (bucket-granular): the SLA
  // bound-violation count of §VI's 0.5 s delay bound.
  std::uint64_t count_at_or_above(double threshold_us) const noexcept {
    if (threshold_us <= 1.0) return total_;
    const std::size_t first = bucket_index(threshold_us);
    std::uint64_t n = 0;
    for (std::size_t i = first; i < kNumBuckets; ++i) n += counts_[i];
    return n;
  }

  double fraction_at_or_above(double threshold_us) const noexcept {
    return total_ ? static_cast<double>(count_at_or_above(threshold_us)) /
                        static_cast<double>(total_)
                  : 0.0;
  }

  // q in [0, 1]; returns the bucket-representative value in microseconds.
  double percentile_us(double q) const noexcept {
    if (total_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target && counts_[i] > 0) return bucket_midpoint(i);
    }
    return max_us_;
  }

  // p in [0, 1] — same estimator as percentile_us. For recorded values
  // >= 64 us the bucket-representative answer is within 0.8% relative error
  // of the exact order statistic (tests/histogram_test.cc verifies).
  double quantile(double p) const noexcept { return percentile_us(p); }

 private:
  // 64 sub-buckets per power of two, 41 exponents: covers 1us..2^41us.
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kExponents = 41;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kSubBuckets) * kExponents;

  static std::size_t bucket_index(double value_us) noexcept {
    const auto v = static_cast<std::uint64_t>(value_us);
    int exp = 63 - __builtin_clzll(v | 1);
    if (exp >= kExponents) exp = kExponents - 1;
    std::uint64_t sub;
    if (exp < kSubBucketBits) {
      sub = (v << (kSubBucketBits - exp)) & (kSubBuckets - 1);
    } else {
      sub = (v >> (exp - kSubBucketBits)) & (kSubBuckets - 1);
    }
    return static_cast<std::size_t>(exp) * kSubBuckets + sub;
  }

  static double bucket_midpoint(std::size_t idx) noexcept {
    const int exp = static_cast<int>(idx) / kSubBuckets;
    const int sub = static_cast<int>(idx) % kSubBuckets;
    const double base = std::ldexp(1.0, exp);
    const double width = base / kSubBuckets;
    return base + (sub + 0.5) * width;
  }

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_us_ = 0;
  double max_us_ = 0;
  double min_us_ = 1e300;
};

}  // namespace proteus
