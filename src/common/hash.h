// Hashing primitives shared by the ring, the Bloom filters and the cache.
//
// Everything here is deterministic and seedable so that simulations and
// benchmarks regenerate bit-identical results across runs and platforms.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace proteus {

// SplitMix64 finalizer. A fast, well-distributed 64-bit mixer; used both as
// an integer hash and as the seeding step for the RNGs in rng.h.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over raw bytes, the classic simple string hash.
constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// xxhash64-style avalanche over a string view with a seed. Not the full
// xxhash algorithm; a compact read-8-bytes-at-a-time construction with the
// same finalizer quality, good enough for key-space distribution.
std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed = 0) noexcept;

inline std::uint64_t hash_u64(std::uint64_t x, std::uint64_t seed = 0) noexcept {
  return splitmix64(x ^ splitmix64(seed));
}

inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected, init/final-xor
// 0xFFFFFFFF) over raw bytes. `seed` is the running CRC for incremental
// use: crc32c(b) == crc32c(b2, crc32c(b1)) for any split b = b1 + b2.
//
// Used as the end-to-end payload integrity checksum on the wire (text
// `C<hex8>` meta-token, binary extras field) and at-rest in the cache, so
// it must be cheap on the hot GET path. Dispatches at runtime to an
// SSE4.2 crc32q path and, where available, a VPCLMULQDQ folding kernel
// (~0.07 cycles/byte); the portable fallback is slicing-by-8. All paths
// produce identical results (hash_test cross-checks them).
std::uint32_t crc32c(std::string_view bytes, std::uint32_t seed = 0) noexcept;

// Kirsch–Mitzenmacher double hashing: h_i(x) = h1 + i*h2. Provides any
// number of "independent" hash values from two base hashes; the standard
// technique for Bloom filters.
class DoubleHasher {
 public:
  explicit DoubleHasher(std::string_view key, std::uint64_t seed = 0) noexcept
      : h1_(hash_bytes(key, seed)),
        h2_(hash_bytes(key, seed ^ 0x5bd1e995) | 1) {}  // odd step

  explicit DoubleHasher(std::uint64_t key, std::uint64_t seed = 0) noexcept
      : h1_(hash_u64(key, seed)), h2_(hash_u64(key, seed ^ 0x5bd1e995) | 1) {}

  std::uint64_t operator()(unsigned i) const noexcept { return h1_ + i * h2_; }

 private:
  std::uint64_t h1_;
  std::uint64_t h2_;
};

}  // namespace proteus
