#include "core/proteus.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace proteus {
namespace {

ProteusOptions small_options(int servers = 10) {
  ProteusOptions opt;
  opt.max_servers = servers;
  opt.per_server.memory_budget_bytes = 4 << 20;
  opt.per_server.auto_size_digest = false;
  opt.per_server.digest.num_counters = 1 << 14;
  opt.per_server.digest.counter_bits = 4;
  opt.per_server.digest.num_hashes = 4;
  opt.ttl = 10 * kSecond;
  return opt;
}

struct CountingBackend {
  std::uint64_t calls = 0;
  std::string operator()(std::string_view key) {
    ++calls;
    return "value-of-" + std::string(key);
  }
};

TEST(ProteusFacade, GetFetchesFromBackendOnceThenCaches) {
  CountingBackend backend;
  Proteus cluster(small_options(), std::ref(backend));
  EXPECT_EQ(cluster.get("page:1", 0), "value-of-page:1");
  EXPECT_EQ(cluster.get("page:1", 1), "value-of-page:1");
  EXPECT_EQ(backend.calls, 1u);
  EXPECT_EQ(cluster.stats().backend_fetches, 1u);
  EXPECT_EQ(cluster.stats().new_server_hits, 1u);
}

TEST(ProteusFacade, InitialServersOptionRespected) {
  ProteusOptions opt = small_options();
  opt.initial_servers = 3;
  Proteus cluster(opt, [](std::string_view) { return std::string("v"); });
  EXPECT_EQ(cluster.active_servers(), 3);
  EXPECT_EQ(cluster.powered_servers(), 3);
}

TEST(ProteusFacade, ShrinkWithoutMissStorm) {
  // The headline behaviour: hot keys survive a 10 -> 5 shrink with ZERO
  // extra backend fetches — the old servers' data migrates on demand.
  CountingBackend backend;
  Proteus cluster(small_options(), std::ref(backend));
  for (int i = 0; i < 500; ++i) {
    cluster.get("page:" + std::to_string(i), kSecond);
  }
  EXPECT_EQ(backend.calls, 500u);

  cluster.resize(5, 2 * kSecond);
  for (int i = 0; i < 500; ++i) {
    cluster.get("page:" + std::to_string(i), 3 * kSecond);
  }
  EXPECT_EQ(backend.calls, 500u) << "shrink caused a miss storm";
  EXPECT_GT(cluster.stats().old_server_hits, 100u);
}

TEST(ProteusFacade, GrowWithoutMissStorm) {
  CountingBackend backend;
  ProteusOptions opt = small_options();
  opt.initial_servers = 4;
  Proteus cluster(opt, std::ref(backend));
  for (int i = 0; i < 500; ++i) cluster.get("page:" + std::to_string(i), kSecond);
  cluster.resize(9, 2 * kSecond);
  for (int i = 0; i < 500; ++i) cluster.get("page:" + std::to_string(i), 3 * kSecond);
  EXPECT_EQ(backend.calls, 500u);
}

TEST(ProteusFacade, MigrationIsOnDemandAndOneShot) {
  CountingBackend backend;
  Proteus cluster(small_options(), std::ref(backend));
  for (int i = 0; i < 300; ++i) cluster.get("k" + std::to_string(i), kSecond);
  cluster.resize(6, 2 * kSecond);
  for (int i = 0; i < 300; ++i) cluster.get("k" + std::to_string(i), 3 * kSecond);
  const auto first_pass = cluster.stats().old_server_hits;
  EXPECT_GT(first_pass, 0u);
  for (int i = 0; i < 300; ++i) cluster.get("k" + std::to_string(i), 4 * kSecond);
  EXPECT_EQ(cluster.stats().old_server_hits, first_pass)
      << "second access should hit the new primary";
}

TEST(ProteusFacade, TransitionFinalizesAfterTtl) {
  Proteus cluster(small_options(),
                  [](std::string_view) { return std::string("v"); });
  cluster.resize(5, 0);
  EXPECT_TRUE(cluster.in_transition());
  EXPECT_EQ(cluster.powered_servers(), 10);  // draining servers still on
  cluster.tick(11 * kSecond);                // ttl = 10 s
  EXPECT_FALSE(cluster.in_transition());
  EXPECT_EQ(cluster.powered_servers(), 5);
}

TEST(ProteusFacade, ColdDataFallsToBackendAfterDrain) {
  CountingBackend backend;
  Proteus cluster(small_options(), std::ref(backend));
  for (int i = 0; i < 100; ++i) cluster.get("page:" + std::to_string(i), 0);
  cluster.resize(5, kSecond);
  // Nobody touches the data during the drain; after TTL it is cold & lost.
  cluster.tick(20 * kSecond);
  const auto before = backend.calls;
  int refetched = 0;
  for (int i = 0; i < 100; ++i) {
    cluster.get("page:" + std::to_string(i), 21 * kSecond);
  }
  refetched = static_cast<int>(backend.calls - before);
  // Keys that had lived on servers 5..9 (about half) are gone.
  EXPECT_GT(refetched, 20);
  EXPECT_LT(refetched, 80);
}

TEST(ProteusFacade, PutThenGetRoundTrip) {
  Proteus cluster(small_options(),
                  [](std::string_view) { return std::string("from-db"); });
  cluster.put("k", "explicit", 0);
  EXPECT_EQ(cluster.get("k", 1), "explicit");
  EXPECT_EQ(cluster.stats().puts, 1u);
}

TEST(ProteusFacade, PutDuringTransitionInvalidatesOldCopy) {
  CountingBackend backend;
  Proteus cluster(small_options(), std::ref(backend));
  // Find a key that moves when shrinking 10 -> 5.
  std::string moving_key;
  for (int i = 0; i < 1000; ++i) {
    const std::string k = "page:" + std::to_string(i);
    const auto h = hash_bytes(k);
    if (cluster.placement().server_for(h, 10) !=
        cluster.placement().server_for(h, 5)) {
      moving_key = k;
      break;
    }
  }
  ASSERT_FALSE(moving_key.empty());

  cluster.get(moving_key, 0);  // resident on its old server
  cluster.resize(5, kSecond);
  cluster.put(moving_key, "updated", 2 * kSecond);
  // The fallback path must never resurrect the stale value.
  EXPECT_EQ(cluster.get(moving_key, 3 * kSecond), "updated");
  EXPECT_EQ(cluster.get(moving_key, 20 * kSecond), "updated");
}

TEST(ProteusFacade, EraseRemovesFromBothLocations) {
  CountingBackend backend;
  Proteus cluster(small_options(), std::ref(backend));
  cluster.get("k", 0);
  cluster.resize(5, kSecond);
  cluster.erase("k", 2 * kSecond);
  const auto before = backend.calls;
  cluster.get("k", 3 * kSecond);
  EXPECT_EQ(backend.calls, before + 1) << "erase left a stale copy";
}

TEST(ProteusFacade, ResizeToSameSizeIsNoop) {
  Proteus cluster(small_options(),
                  [](std::string_view) { return std::string("v"); });
  cluster.resize(10, 0);
  EXPECT_FALSE(cluster.in_transition());
  EXPECT_EQ(cluster.stats().resizes, 0u);
}

TEST(ProteusFacade, OverlappingResizeFinalizesPrevious) {
  Proteus cluster(small_options(),
                  [](std::string_view) { return std::string("v"); });
  cluster.resize(5, 0);
  cluster.resize(8, kSecond);  // before ttl: finalize 10->5, then 5->8
  EXPECT_TRUE(cluster.in_transition());
  EXPECT_EQ(cluster.active_servers(), 8);
  cluster.tick(12 * kSecond);
  EXPECT_EQ(cluster.powered_servers(), 8);
}

TEST(ProteusFacade, StatsHitRatio) {
  CountingBackend backend;
  Proteus cluster(small_options(), std::ref(backend));
  cluster.get("a", 0);
  cluster.get("a", 1);
  cluster.get("a", 2);
  cluster.get("b", 3);
  EXPECT_NEAR(cluster.stats().hit_ratio(), 0.5, 1e-9);
  cluster.reset_stats();
  EXPECT_EQ(cluster.stats().gets, 0u);
}

TEST(ProteusFacade, BytesCachedGrowsWithResidency) {
  Proteus cluster(small_options(),
                  [](std::string_view) { return std::string(1000, 'x'); });
  EXPECT_EQ(cluster.bytes_cached(), 0u);
  for (int i = 0; i < 20; ++i) cluster.get("k" + std::to_string(i), 0);
  EXPECT_GT(cluster.bytes_cached(), 20'000u);
}

TEST(ProteusFacade, PlanResizePredictsActualMigrations) {
  CountingBackend backend;
  ProteusOptions opt = small_options();
  opt.object_charge = 1000;
  Proteus cluster(opt, std::ref(backend));
  for (int i = 0; i < 400; ++i) cluster.get("page:" + std::to_string(i), 0);

  const ring::TransitionPlan plan = cluster.plan_resize(5);
  EXPECT_EQ(plan.n_from, 10);
  EXPECT_EQ(plan.n_to, 5);
  EXPECT_NEAR(plan.total_fraction, 0.5, 1e-9);  // |10-5|/10
  EXPECT_NEAR(static_cast<double>(plan.total_bytes),
              static_cast<double>(cluster.bytes_cached()) / 2,
              static_cast<double>(cluster.bytes_cached()) * 0.02);

  // Execute the resize and touch everything: the number of on-demand
  // migrations should be ~ the planned key fraction of the hot set.
  cluster.resize(5, kSecond);
  for (int i = 0; i < 400; ++i) cluster.get("page:" + std::to_string(i), 2 * kSecond);
  EXPECT_NEAR(static_cast<double>(cluster.stats().old_server_hits), 200.0,
              40.0);
}

TEST(ProteusFacade, ObjectChargeOverride) {
  ProteusOptions opt = small_options();
  opt.object_charge = 4096;
  Proteus cluster(opt, [](std::string_view) { return std::string("tiny"); });
  cluster.get("k", 0);
  EXPECT_GT(cluster.bytes_cached(), 4096u);
}

}  // namespace
}  // namespace proteus
