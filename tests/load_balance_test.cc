#include "workload/load_balance.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hashring/modulo_placement.h"
#include "hashring/proteus_placement.h"
#include "hashring/random_vn_placement.h"

namespace proteus::workload {
namespace {

// Uniform-key trace: every request targets a fresh random key, so the only
// imbalance left is the placement's own key-space partition.
std::vector<TraceEvent> uniform_trace(std::size_t n, SimTime duration,
                                      std::uint64_t seed) {
  std::vector<TraceEvent> trace;
  trace.reserve(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    trace.push_back(TraceEvent{
        static_cast<SimTime>(static_cast<double>(i) / n * duration),
        "u:" + std::to_string(rng.next_u64())});
  }
  return trace;
}

TEST(LoadBalance, PerfectPlacementUniformKeysNearOne) {
  ring::ProteusPlacement placement(10);
  const auto trace = uniform_trace(200'000, 4 * kMinute, 1);
  const std::vector<int> schedule = {10, 10, 10, 10};
  const auto series =
      replay_load_balance(placement, trace, schedule, kMinute, true);
  ASSERT_EQ(series.min_max_ratio.size(), 4u);
  EXPECT_GT(series.worst(), 0.9);
  EXPECT_GT(series.mean(), 0.92);
}

TEST(LoadBalance, DynamicScheduleUsesActiveSetOnly) {
  ring::ProteusPlacement placement(10);
  const auto trace = uniform_trace(100'000, 2 * kMinute, 2);
  const std::vector<int> schedule = {2, 10};
  const auto series =
      replay_load_balance(placement, trace, schedule, kMinute, true);
  ASSERT_EQ(series.min_max_ratio.size(), 2u);
  // Both slots should be balanced over their respective active sets.
  EXPECT_GT(series.min_max_ratio[0], 0.9);
  EXPECT_GT(series.min_max_ratio[1], 0.85);
}

TEST(LoadBalance, StaticModeIgnoresSchedule) {
  ring::ModuloPlacement placement(10);
  const auto trace = uniform_trace(100'000, kMinute, 3);
  const std::vector<int> schedule = {1};  // would be terrible if applied
  const auto dynamic =
      replay_load_balance(placement, trace, schedule, kMinute, true);
  const auto fixed =
      replay_load_balance(placement, trace, schedule, kMinute, false);
  EXPECT_DOUBLE_EQ(dynamic.min_max_ratio[0], 1.0);  // n=1: trivially balanced
  EXPECT_GT(fixed.min_max_ratio[0], 0.9);           // n=10, all servers loaded
}

TEST(LoadBalance, SparseRandomRingIsWorseThanProteus) {
  const auto trace = uniform_trace(200'000, 2 * kMinute, 4);
  const std::vector<int> schedule = {7, 7};
  ring::ProteusPlacement proteus_ring(10);
  ring::RandomVirtualNodePlacement random_ring(10, 3, 5);
  const auto p =
      replay_load_balance(proteus_ring, trace, schedule, kMinute, true);
  const auto r =
      replay_load_balance(random_ring, trace, schedule, kMinute, true);
  EXPECT_GT(p.mean(), r.mean() + 0.15);
}

TEST(LoadBalance, TruncatesTraceBeyondSchedule) {
  ring::ModuloPlacement placement(4);
  const auto trace = uniform_trace(10'000, 10 * kMinute, 5);
  const std::vector<int> schedule = {4, 4};
  const auto series =
      replay_load_balance(placement, trace, schedule, kMinute, true);
  EXPECT_EQ(series.min_max_ratio.size(), 2u);
}

TEST(LoadBalance, EmptySlotsCountAsBalanced) {
  ring::ModuloPlacement placement(4);
  // All events land in slot 2; slots 0-1 are empty.
  std::vector<TraceEvent> trace;
  for (int i = 0; i < 1000; ++i) {
    trace.push_back(TraceEvent{2 * kMinute + i, "k" + std::to_string(i)});
  }
  const std::vector<int> schedule = {4, 4, 4};
  const auto series =
      replay_load_balance(placement, trace, schedule, kMinute, true);
  ASSERT_EQ(series.min_max_ratio.size(), 3u);
  EXPECT_DOUBLE_EQ(series.min_max_ratio[0], 1.0);
  EXPECT_DOUBLE_EQ(series.min_max_ratio[1], 1.0);
}

TEST(LoadBalance, SeriesStatistics) {
  LoadBalanceSeries series;
  series.min_max_ratio = {0.5, 1.0, 0.75};
  EXPECT_DOUBLE_EQ(series.mean(), 0.75);
  EXPECT_DOUBLE_EQ(series.worst(), 0.5);
  LoadBalanceSeries empty;
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.worst(), 0.0);
}

}  // namespace
}  // namespace proteus::workload
