#include "bloom/counting_bloom_filter.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace proteus::bloom {
namespace {

TEST(CountingBloom, InsertThenRemoveRestoresEmptiness) {
  CountingBloomFilter cbf(1 << 14, 4, 4);
  for (int i = 0; i < 500; ++i) cbf.insert("k" + std::to_string(i));
  for (int i = 0; i < 500; ++i) cbf.remove("k" + std::to_string(i));
  EXPECT_EQ(cbf.nonzero_counters(), 0u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(cbf.maybe_contains("k" + std::to_string(i)));
  }
}

TEST(CountingBloom, NoFalseNegativesForResidentKeys) {
  CountingBloomFilter cbf(1 << 15, 4, 4);
  for (int i = 0; i < 3000; ++i) cbf.insert("k" + std::to_string(i));
  // Remove half; the rest must all still answer yes.
  for (int i = 0; i < 1500; ++i) cbf.remove("k" + std::to_string(i));
  for (int i = 1500; i < 3000; ++i) {
    EXPECT_TRUE(cbf.maybe_contains("k" + std::to_string(i))) << i;
  }
}

TEST(CountingBloom, CounterPackingAcrossWordBoundaries) {
  // counter_bits values that do not divide 64 force straddled counters.
  for (unsigned bits : {3u, 5u, 7u, 11u, 13u}) {
    CountingBloomFilter cbf(257, bits, 1, /*seed=*/1);
    // Drive a single counter up and down through its full range.
    const std::uint64_t max = (1ULL << bits) - 1;
    for (std::uint64_t v = 0; v < max; ++v) cbf.insert(std::uint64_t{77});
    EXPECT_TRUE(cbf.maybe_contains(std::uint64_t{77}));
    for (std::uint64_t v = 0; v < max; ++v) cbf.remove(std::uint64_t{77});
    EXPECT_FALSE(cbf.maybe_contains(std::uint64_t{77})) << bits;
    EXPECT_EQ(cbf.nonzero_counters(), 0u) << bits;
  }
}

TEST(CountingBloom, SetGetCounterValuesExhaustive) {
  // Every counter in a small filter must hold independent values.
  CountingBloomFilter cbf(64, 5, 1, 3);
  // Direct exercise through inserts: each insert with h=1 touches 1 counter.
  std::vector<int> expected(64, 0);
  for (std::uint64_t k = 0; k < 512; ++k) {
    cbf.insert(k);
  }
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 64; ++i) total += cbf.counter_at(i);
  EXPECT_EQ(total, 512u);  // no counts lost to packing bugs (max 31 per ctr)
}

TEST(CountingBloom, SaturatePolicyNeverGoesFalselyNegative) {
  // 1-bit counters saturate instantly; repeated inserts then removes must
  // not produce a false negative for a still-resident key.
  CountingBloomFilter cbf(1 << 10, 1, 2, 0, OverflowPolicy::kSaturate);
  for (int i = 0; i < 200; ++i) cbf.insert("dup");
  EXPECT_GT(cbf.overflow_events(), 0u);
  for (int i = 0; i < 199; ++i) cbf.remove("dup");
  EXPECT_TRUE(cbf.maybe_contains("dup"));  // one copy logically remains
}

TEST(CountingBloom, WrapPolicyProducesFalseNegativesAfterOverflow) {
  // With a single 2-bit counter every key collides: the 4th insert wraps
  // the counter to 0 (overflow), the 5th leaves it at 1, and one removal
  // underflows it to 0 — every resident key now answers "no". This is the
  // Eq. (5) failure mode reproduced for Fig. 8.
  CountingBloomFilter cbf(1, 2, 1, 0, OverflowPolicy::kWrap);
  for (std::uint64_t k = 0; k < 5; ++k) cbf.insert(k);
  EXPECT_EQ(cbf.overflow_events(), 1u);
  EXPECT_EQ(cbf.counter_at(0), 1u);
  cbf.remove(std::uint64_t{0});
  for (std::uint64_t k = 1; k < 5; ++k) {
    EXPECT_FALSE(cbf.maybe_contains(k)) << "resident key " << k;
  }
}

TEST(CountingBloom, SnapshotMatchesMembership) {
  CountingBloomFilter cbf(1 << 12, 4, 4, 17);
  for (int i = 0; i < 300; ++i) cbf.insert("k" + std::to_string(i));
  BloomFilter snap = cbf.snapshot();
  EXPECT_EQ(snap.num_bits(), cbf.num_counters());
  EXPECT_EQ(snap.num_hashes(), cbf.num_hashes());
  EXPECT_EQ(snap.seed(), 17u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(snap.maybe_contains("k" + std::to_string(i))) << i;
  }
  // A later mutation of the CBF must not affect the snapshot.
  cbf.remove("k0");
  EXPECT_TRUE(snap.maybe_contains("k0"));
}

TEST(CountingBloom, SnapshotBitCountEqualsNonzeroCounters) {
  CountingBloomFilter cbf(4096, 4, 4);
  for (int i = 0; i < 100; ++i) cbf.insert("k" + std::to_string(i));
  EXPECT_EQ(cbf.snapshot().popcount(), cbf.nonzero_counters());
}

TEST(CountingBloom, ClearResetsEverything) {
  CountingBloomFilter cbf(1024, 4, 4);
  cbf.insert("a");
  cbf.clear();
  EXPECT_EQ(cbf.nonzero_counters(), 0u);
  EXPECT_FALSE(cbf.maybe_contains("a"));
  EXPECT_EQ(cbf.overflow_events(), 0u);
}

TEST(CountingBloom, MemoryBytesMatchesPacking) {
  CountingBloomFilter cbf(1000, 3, 4);  // 3000 bits -> 47 words -> 376 bytes
  EXPECT_EQ(cbf.memory_bytes(), ((1000 * 3 + 63) / 64) * 8u);
}

}  // namespace
}  // namespace proteus::bloom
