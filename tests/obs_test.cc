// The observability layer: registry concurrency, trace-ring ordering and
// overflow, exposition formats, and the end-to-end transition timeline
// emitted by the in-process Proteus facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/proteus.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace proteus::obs {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotentPerName) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x_total", "help");
  Counter* b = registry.counter("x_total", "different help ignored");
  EXPECT_EQ(a, b);
  a->inc(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, SnapshotMaterializesEveryKind) {
  MetricsRegistry registry;
  registry.counter("c_total")->inc(5);
  registry.gauge("g")->set(2.5);
  registry.histogram("h_us")->record(1000.0);
  registry.counter_fn("cf_total", "callback", [] { return 42.0; });
  registry.gauge_fn("gf", "callback", [] { return -1.0; });
  registry.histogram_fn("hf_us", "callback", [] {
    LatencyHistogram h;
    h.record(200.0);
    return h;
  });

  const std::vector<MetricSample> samples = registry.snapshot();
  ASSERT_EQ(samples.size(), 6u);
  std::map<std::string, const MetricSample*> by_name;
  for (const MetricSample& s : samples) by_name[s.name] = &s;
  EXPECT_EQ(by_name.at("c_total")->value, 5.0);
  EXPECT_EQ(by_name.at("g")->value, 2.5);
  EXPECT_EQ(by_name.at("h_us")->hist.count(), 1u);
  EXPECT_EQ(by_name.at("cf_total")->value, 42.0);
  EXPECT_EQ(by_name.at("gf")->value, -1.0);
  EXPECT_EQ(by_name.at("hf_us")->hist.count(), 1u);
}

TEST(MetricsRegistry, ConcurrentWritersAndSnapshots) {
  // The hot path (inc / set / record) raced against snapshot() from every
  // thread: exact counts must survive, and TSan must stay quiet.
  MetricsRegistry registry;
  Counter* hits = registry.counter("hits_total");
  Gauge* level = registry.gauge("level");
  Histogram* lat = registry.histogram("lat_us");

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        hits->inc();
        level->add(1.0);
        lat->record(64.0 + static_cast<double>(i % 1000));
        if (i % 1000 == t) {
          const auto samples = registry.snapshot();
          EXPECT_EQ(samples.size(), 3u);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(hits->value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(level->value(), static_cast<double>(kThreads) * kOpsPerThread);
  EXPECT_EQ(lat->snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        registry.counter("shared_" + std::to_string(i))->inc();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(registry.size(), 100u);
  for (const MetricSample& s : registry.snapshot()) {
    EXPECT_EQ(s.value, static_cast<double>(kThreads)) << s.name;
  }
}

// --- exposition formats ------------------------------------------------------

TEST(Exposition, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.counter("req_total", "requests")->inc(7);
  registry.gauge("ratio", "a ratio")->set(0.5);
  Histogram* h = registry.histogram("lat_us", "latency");
  for (int i = 0; i < 100; ++i) h->record(1000.0);

  const std::string text = render_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# HELP req_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ratio gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ratio 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us{quantile=\"0.99\"} "), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum "), std::string::npos);
  // Counters render integral (no scientific notation / decimal point).
  registry.counter("big_total")->inc(123456789);
  EXPECT_NE(render_prometheus(registry.snapshot()).find("big_total 123456789\n"),
            std::string::npos);
}

TEST(Exposition, StatsTextFormat) {
  MetricsRegistry registry;
  registry.counter("req_total")->inc(7);
  Histogram* h = registry.histogram("lat_us");
  for (int i = 0; i < 100; ++i) h->record(1000.0);

  const std::string text = render_stats_text(registry.snapshot());
  EXPECT_NE(text.find("STAT req_total 7\r\n"), std::string::npos);
  EXPECT_NE(text.find("STAT lat_us_count 100\r\n"), std::string::npos);
  EXPECT_NE(text.find("STAT lat_us_p99 "), std::string::npos);
  EXPECT_NE(text.find("STAT lat_us_mean "), std::string::npos);
  EXPECT_NE(text.find("STAT lat_us_max "), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 5), "END\r\n");
}

// --- TraceRing ---------------------------------------------------------------

TEST(TraceRing, AssignsStrictlyIncreasingSequence) {
  TraceRing ring(16);
  emit(&ring, 10, TraceEventKind::kResizeBegin, 3, 2);
  emit(&ring, 20, TraceEventKind::kPowerOn, 2);
  emit(&ring, 30, TraceEventKind::kResizeEnd, 2);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
  }
  EXPECT_EQ(events[0].kind, TraceEventKind::kResizeBegin);
  EXPECT_EQ(events[2].kind, TraceEventKind::kResizeEnd);
}

TEST(TraceRing, OverflowDropsOldestKeepsOrder) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    emit(&ring, i, TraceEventKind::kTtlExpiry, i % 3);
  }
  EXPECT_EQ(ring.total_emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The four NEWEST events, still in emission order.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
  }
}

TEST(TraceRing, NullSinkAndClear) {
  emit(nullptr, 0, TraceEventKind::kPowerOn, 1);  // must be a safe no-op
  TraceRing ring(8);
  emit(&ring, 0, TraceEventKind::kPowerOn, 1);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  // Sequence numbering continues after clear (seq identifies an emission,
  // not a slot).
  emit(&ring, 0, TraceEventKind::kPowerOff, 1);
  EXPECT_EQ(ring.snapshot().front().seq, 1u);
}

TEST(TraceRing, ConcurrentEmittersGetUniqueSeq) {
  TraceRing ring(1 << 14);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        emit(&ring, i, TraceEventKind::kMigrationHit, t, -1, 1, "k");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);  // dense, unique, ordered
  }
}

TEST(TraceRing, JsonlRendering) {
  TraceRing ring(8);
  emit(&ring, 1234, TraceEventKind::kMigrationHit, 2, 0, 14, "page:7");
  emit(&ring, 5678, TraceEventKind::kPowerOff, 2, -1, 100);
  const std::string jsonl = ring.jsonl();
  EXPECT_NE(jsonl.find("\"event\":\"migration_hit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"server\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"peer\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"key\":\"page:7\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"power_off\""), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

TEST(TraceRing, JsonEscapesAndTruncatesKeys) {
  TraceRing ring(8);
  emit(&ring, 0, TraceEventKind::kTtlExpiry, 0, -1, 1,
       std::string("a\"b\\c\n") + std::string(100, 'x'));
  const std::string json = to_json(ring.snapshot().front());
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);
  // Key was truncated to 64 bytes at emit time.
  EXPECT_EQ(ring.snapshot().front().key.size(), 64u);
}

// --- the in-process transition timeline --------------------------------------

class TimelineTest : public ::testing::Test {
 protected:
  static ProteusOptions options(TraceSink* sink) {
    ProteusOptions opt;
    opt.max_servers = 3;
    opt.ttl = 10 * kSecond;
    opt.per_server.memory_budget_bytes = 4 << 20;
    opt.per_server.item_ttl = 30 * kSecond;
    opt.trace = sink;
    return opt;
  }
};

TEST_F(TimelineTest, ShrinkEmitsFullLifecycleInOrder) {
  TraceRing ring(1 << 14);
  Proteus cluster(options(&ring), [](std::string_view key) {
    return "v-" + std::string(key);
  });

  SimTime now = 0;
  for (int i = 0; i < 200; ++i) {
    cluster.get("page:" + std::to_string(i), now);
    now += kMillisecond;
  }
  ring.clear();  // keep only the transition itself

  cluster.resize(2, now);
  for (int i = 0; i < 200; ++i) {
    cluster.get("page:" + std::to_string(i), now);
    now += kMillisecond;
  }
  cluster.tick(now + 20 * kSecond);  // past the drain window

  const std::vector<TraceEvent> events = ring.snapshot();
  std::map<TraceEventKind, std::uint64_t> counts;
  std::map<TraceEventKind, std::uint64_t> first_seq, last_seq;
  for (const TraceEvent& e : events) {
    if (counts[e.kind]++ == 0) first_seq[e.kind] = e.seq;
    last_seq[e.kind] = e.seq;
  }

  EXPECT_EQ(counts[TraceEventKind::kResizeBegin], 1u);
  EXPECT_EQ(counts[TraceEventKind::kDigestSnapshot], 3u);  // per old server
  EXPECT_EQ(counts[TraceEventKind::kDrainBegin], 1u);      // server 2
  EXPECT_GT(counts[TraceEventKind::kMigrationHit], 0u);
  EXPECT_EQ(counts[TraceEventKind::kPowerOff], 1u);
  EXPECT_EQ(counts[TraceEventKind::kResizeEnd], 1u);

  // Lifecycle ordering by sequence number: begin -> digests -> drain ->
  // migrations -> power_off -> end.
  EXPECT_LT(first_seq[TraceEventKind::kResizeBegin],
            first_seq[TraceEventKind::kDigestSnapshot]);
  EXPECT_LT(last_seq[TraceEventKind::kDigestSnapshot],
            first_seq[TraceEventKind::kDrainBegin]);
  EXPECT_LT(first_seq[TraceEventKind::kDrainBegin],
            first_seq[TraceEventKind::kMigrationHit]);
  EXPECT_LT(last_seq[TraceEventKind::kMigrationHit],
            first_seq[TraceEventKind::kPowerOff]);
  EXPECT_LT(first_seq[TraceEventKind::kPowerOff],
            first_seq[TraceEventKind::kResizeEnd]);

  // Event payloads: resize_begin carries (old, new) counts; drain/power_off
  // name the leaving server.
  const TraceEvent& begin = events.front();
  EXPECT_EQ(begin.kind, TraceEventKind::kResizeBegin);
  EXPECT_EQ(begin.server, 3);
  EXPECT_EQ(begin.peer, 2);
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kDrainBegin ||
        e.kind == TraceEventKind::kPowerOff) {
      EXPECT_EQ(e.server, 2);
    }
    if (e.kind == TraceEventKind::kMigrationHit) {
      EXPECT_EQ(e.server, 2);  // source: the draining server
      EXPECT_GE(e.peer, 0);
      EXPECT_FALSE(e.key.empty());
    }
  }
}

TEST_F(TimelineTest, GrowEmitsPowerOnAndExpiryEmitsTtl) {
  TraceRing ring(1 << 14);
  ProteusOptions opt = options(&ring);
  opt.initial_servers = 2;
  Proteus cluster(opt, [](std::string_view key) {
    return "v-" + std::string(key);
  });

  SimTime now = 0;
  for (int i = 0; i < 50; ++i) cluster.get("k:" + std::to_string(i), now);
  ring.clear();

  cluster.resize(3, now);
  std::uint64_t power_on = 0;
  for (const TraceEvent& e : ring.snapshot()) {
    if (e.kind == TraceEventKind::kPowerOn) {
      ++power_on;
      EXPECT_EQ(e.server, 2);
    }
    EXPECT_NE(e.kind, TraceEventKind::kDrainBegin);
  }
  EXPECT_EQ(power_on, 1u);

  // TTL expiry: store fresh keys once the transition has finalized (so the
  // mapping is stable), then touch them past item_ttl — one lazy-expiry
  // trace per key, tagged with the server that held it.
  now = 15 * kSecond;
  cluster.tick(now);  // past the 10 s drain window
  ASSERT_FALSE(cluster.in_transition());
  for (int i = 0; i < 50; ++i) {
    cluster.put("e:" + std::to_string(i), "x", now);
  }
  now = 60 * kSecond;  // 45 s idle > 30 s item_ttl
  for (int i = 0; i < 50; ++i) cluster.get("e:" + std::to_string(i), now);
  std::uint64_t expiries = 0;
  for (const TraceEvent& e : ring.snapshot()) {
    if (e.kind == TraceEventKind::kTtlExpiry) {
      ++expiries;
      EXPECT_GE(e.server, 0);  // tagged with the emitting server
      EXPECT_EQ(e.n, 1u);
    }
  }
  EXPECT_EQ(expiries, 50u);
}

TEST_F(TimelineTest, DigestFalseNegativesAreDetectedAndTraced) {
  // Force genuine §IV-B false negatives with the paper's wrapping counters
  // (Eq. 5 / Fig. 8): two keys sharing a 1-bit counter wrap it to zero, so
  // the digest reports both cold while they are resident.
  TraceRing ring(1 << 14);
  ProteusOptions opt;
  opt.max_servers = 2;
  opt.ttl = 100 * kSecond;
  opt.trace = &ring;
  opt.per_server.memory_budget_bytes = 16 << 20;
  opt.per_server.auto_size_digest = false;
  opt.per_server.digest.num_counters = 128;
  opt.per_server.digest.counter_bits = 1;
  opt.per_server.digest.num_hashes = 1;
  opt.per_server.digest_policy = bloom::OverflowPolicy::kWrap;
  Proteus cluster(opt, [](std::string_view key) {
    return "v-" + std::string(key);
  });

  SimTime now = 0;
  for (int i = 0; i < 400; ++i) {
    cluster.put("k:" + std::to_string(i), "x", now);
  }

  cluster.resize(1, now);
  for (int i = 0; i < 400; ++i) {
    cluster.get("k:" + std::to_string(i), now);
  }

  EXPECT_GT(cluster.stats().digest_false_negatives, 0u);
  std::uint64_t traced = 0;
  for (const TraceEvent& e : ring.snapshot()) {
    if (e.kind == TraceEventKind::kDigestFalseNegative) {
      ++traced;
      EXPECT_EQ(e.server, 1);  // the old-mapping server holding the key
      EXPECT_EQ(e.peer, 0);    // the new primary that missed
      EXPECT_FALSE(e.key.empty());
    }
  }
  EXPECT_EQ(traced, cluster.stats().digest_false_negatives);
}

TEST_F(TimelineTest, FacadeMetricsFlowThroughRegistry) {
  Proteus cluster(options(nullptr), [](std::string_view key) {
    return "v-" + std::string(key);
  });
  MetricsRegistry registry;
  cluster.register_metrics(registry);

  SimTime now = 0;
  for (int i = 0; i < 100; ++i) cluster.get("k:" + std::to_string(i), now);
  cluster.resize(2, now);

  std::map<std::string, double> values;
  for (const MetricSample& s : registry.snapshot()) values[s.name] = s.value;
  EXPECT_EQ(values.at("proteus_gets_total"), 100.0);
  EXPECT_EQ(values.at("proteus_backend_fetches_total"), 100.0);
  EXPECT_EQ(values.at("proteus_resizes_total"), 1.0);
  EXPECT_EQ(values.at("proteus_active_servers"), 2.0);
  EXPECT_EQ(values.at("proteus_powered_servers"), 3.0);  // server 2 drains
  EXPECT_EQ(values.at("proteus_in_transition"), 1.0);
  // Per-server load gauges exist for the K/n balance check.
  EXPECT_EQ(values.at("proteus_server_0_gets_total") +
                values.at("proteus_server_1_gets_total") +
                values.at("proteus_server_2_gets_total"),
            100.0);
  EXPECT_EQ(values.at("proteus_server_2_power_state"), 1.0);  // draining
}

}  // namespace
}  // namespace proteus::obs
