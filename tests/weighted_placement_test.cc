#include "hashring/weighted_placement.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "hashring/proteus_placement.h"

namespace proteus::ring {
namespace {

TEST(WeightedPlacement, UniformWeightsReduceToAlgorithm1) {
  WeightedProteusPlacement weighted(std::vector<double>(10, 1.0));
  ProteusPlacement uniform(10);
  Rng rng(1);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int n = 1; n <= 10; ++n) {
      ASSERT_EQ(weighted.server_for(h, n), uniform.server_for(h, n));
    }
  }
  EXPECT_EQ(weighted.num_virtual_nodes(), uniform.num_virtual_nodes());
}

TEST(WeightedPlacement, WeightedBalanceConditionAtEveryPrefix) {
  // The generalized BC: share_j(n) == w_j / W_n for every prefix.
  const std::vector<double> weights = {4, 1, 2, 1, 3, 2, 1, 8};
  WeightedProteusPlacement p(weights);
  for (int n = 1; n <= 8; ++n) {
    for (int s = 0; s < n; ++s) {
      ASSERT_NEAR(p.share(s, n), p.target_share(s, n), 1e-9)
          << "n=" << n << " s=" << s;
    }
    for (int s = n; s < 8; ++s) {
      ASSERT_DOUBLE_EQ(p.share(s, n), 0.0);
    }
  }
}

TEST(WeightedPlacement, TargetShareMatchesWeights) {
  WeightedProteusPlacement p({2, 1, 1});
  EXPECT_DOUBLE_EQ(p.target_share(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.target_share(0, 2), 2.0 / 3);
  EXPECT_DOUBLE_EQ(p.target_share(1, 2), 1.0 / 3);
  EXPECT_DOUBLE_EQ(p.target_share(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(p.target_share(2, 3), 0.25);
}

TEST(WeightedPlacement, MinimalMigrationForWeightedTargets) {
  // Turning s_{n+1} on must move exactly its target share w_{n+1}/W_{n+1}
  // — the minimum for reaching the weighted distribution.
  const std::vector<double> weights = {1, 3, 2, 5, 1, 2};
  WeightedProteusPlacement p(weights);
  for (int n = 1; n < 6; ++n) {
    ASSERT_NEAR(p.migration_fraction(n, n + 1), p.target_share(n, n + 1),
                1e-9)
        << n;
  }
}

TEST(WeightedPlacement, MonotoneUnderShrink) {
  const std::vector<double> weights = {2, 1, 4, 1, 3};
  WeightedProteusPlacement p(weights);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int n = 1; n < 5; ++n) {
      const int at_big = p.server_for(h, n + 1);
      if (at_big != n) {
        ASSERT_EQ(at_big, p.server_for(h, n));
      } else {
        ASSERT_LT(p.server_for(h, n), n);
      }
    }
  }
}

TEST(WeightedPlacement, EmpiricalDistributionMatchesWeights) {
  const std::vector<double> weights = {1, 2, 4};
  WeightedProteusPlacement p(weights);
  Rng rng(4);
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 210'000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(p.server_for(rng.next_u64(), 3))];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 1.0 / 7, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 2.0 / 7, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kSamples), 4.0 / 7, 0.01);
}

TEST(WeightedPlacement, ExtremeWeightRatiosStayExact) {
  const std::vector<double> weights = {100, 1, 50, 1, 1};
  WeightedProteusPlacement p(weights);
  for (int n = 1; n <= 5; ++n) {
    for (int s = 0; s < n; ++s) {
      ASSERT_NEAR(p.share(s, n), p.target_share(s, n), 1e-8)
          << "n=" << n << " s=" << s;
    }
  }
}

TEST(WeightedPlacement, SingleServer) {
  WeightedProteusPlacement p({3.5});
  EXPECT_EQ(p.server_for(123456789, 1), 0);
  EXPECT_DOUBLE_EQ(p.share(0, 1), 1.0);
}

}  // namespace
}  // namespace proteus::ring
