// Race-freedom of the daemon's stats surfaces and the HTTP exposition
// endpoint: protocol worker threads hammer the shared cache while other
// threads concurrently take stats_snapshot()/metrics_text() and issue
// `stats proteus` / `stats reset` on the wire. Run under TSan (scripts/
// check.sh thread) this is the regression test for torn CacheStats reads.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/memcache_client.h"
#include "net/memcache_daemon.h"
#include "net/metrics_http.h"

namespace proteus::net {
namespace {

cache::CacheConfig small_config() {
  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 4 << 20;
  cfg.auto_size_digest = false;
  cfg.digest.num_counters = 1 << 12;
  cfg.digest.counter_bits = 4;
  cfg.digest.num_hashes = 4;
  return cfg;
}

struct RunningDaemon {
  explicit RunningDaemon(int threads)
      : daemon(small_config(), 0, monotonic_now, threads) {
    EXPECT_TRUE(daemon.ok());
    runner = std::thread([this] { daemon.run(); });
  }
  ~RunningDaemon() {
    daemon.stop();
    runner.join();
  }
  MemcacheDaemon daemon;
  std::thread runner;
};

TEST(StatsSnapshot, RaceFreeUnderMultithreadedLoad) {
  RunningDaemon rig(2);
  const std::uint16_t port = rig.daemon.port();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> wire_ops{0};

  // Two connections hammering sets/gets through the protocol threads.
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      client::MemcacheConnection conn(port);
      ASSERT_TRUE(conn.ok());
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key = "k" + std::to_string(t) + ":" +
                                std::to_string(i % 500);
        ASSERT_TRUE(conn.set(key, "value"));
        (void)conn.get(key);
        ++i;
        wire_ops.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  // A wire client exercising `stats proteus` and `stats reset` concurrently.
  std::thread stats_client([&] {
    client::MemcacheConnection conn(port);
    ASSERT_TRUE(conn.ok());
    int rounds = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto pairs = conn.stats("proteus");
      ASSERT_TRUE(pairs.has_value());
      EXPECT_FALSE(pairs->empty());
      if (++rounds % 7 == 0) {
        auto plain = conn.stats();
        ASSERT_TRUE(plain.has_value());
      }
      if (rounds % 11 == 0) {
        // `stats reset` races the writers; it must never wedge the session.
        auto reset = conn.stats("reset");
        ASSERT_TRUE(reset.has_value());
        EXPECT_TRUE(reset->empty());  // RESET carries no STAT lines
      }
    }
  });

  // In-process pollers of the race-free accessors.
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const cache::CacheStats s = rig.daemon.stats_snapshot();
      EXPECT_GE(s.gets, s.hits);
      (void)rig.daemon.item_count();
      (void)rig.daemon.bytes_used();
      const std::string text = rig.daemon.metrics_text();
      EXPECT_NE(text.find("proteus_cache_cmd_get_total"), std::string::npos);
    }
  });

  while (wire_ops.load(std::memory_order_relaxed) < 4000) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  stats_client.join();
  poller.join();

  // Occupancy survives the resets; item_count is bounded by distinct keys.
  EXPECT_GT(rig.daemon.item_count(), 0u);
  EXPECT_LE(rig.daemon.item_count(), 1000u);
}

TEST(StatsSnapshot, WireStatsResetZeroesDaemonCounters) {
  RunningDaemon rig(1);
  client::MemcacheConnection conn(rig.daemon.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.set("k", "v"));
  (void)conn.get("k");
  EXPECT_GT(rig.daemon.stats_snapshot().gets, 0u);
  auto reset = conn.stats("reset");
  ASSERT_TRUE(reset.has_value());
  EXPECT_EQ(rig.daemon.stats_snapshot().gets, 0u);
  EXPECT_EQ(rig.daemon.stats_snapshot().sets, 0u);
}

// `stats reset` must clear the observability drop/shed counters with the
// same sweep that clears the cache counters — a dashboard that zeroes
// cmd_get but keeps stale shed counts misattributes past overload to the
// fresh measurement interval.
TEST(StatsSnapshot, WireStatsResetClearsShedAndDropCounters) {
  AdmissionOptions admission;
  admission.pipeline_cap = 1;  // a 3-get batch sheds two commands
  MemcacheDaemon daemon(small_config(), 0, monotonic_now, 1,
                        TcpServer::Limits{}, admission);
  ASSERT_TRUE(daemon.ok());
  std::thread runner([&daemon] { daemon.run(); });

  {
    client::MemcacheConnection conn(daemon.port());
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn.set("k", "v"));

    // One pipelined write of three gets = one protocol batch; the cap
    // admits the first and sheds the rest.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(daemon.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::string batch = "get k\r\nget k\r\nget k\r\n";
    ASSERT_EQ(::send(fd, batch.data(), batch.size(), 0),
              static_cast<ssize_t>(batch.size()));
    std::string reply;
    char buf[4096];
    while (reply.find("SERVER_ERROR overloaded") == std::string::npos) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_GT(daemon.shed_pipeline(), 0u);
    EXPECT_GT(daemon.sheds_total(), 0u);

    auto reset = conn.stats("reset");
    ASSERT_TRUE(reset.has_value());
    EXPECT_EQ(daemon.shed_pipeline(), 0u);
    EXPECT_EQ(daemon.shed_over_cap(), 0u);
    EXPECT_EQ(daemon.shed_background(), 0u);
    EXPECT_EQ(daemon.shed_queue_deadline(), 0u);
    EXPECT_EQ(daemon.sheds_total(), 0u);
    EXPECT_EQ(daemon.trace().dropped(), 0u);
    EXPECT_EQ(daemon.spans().dropped(), 0u);
  }

  daemon.stop();
  runner.join();
}

// --- the HTTP exposition endpoint, end to end --------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(MetricsHttp, ServesPrometheusTextTraceAndSpans) {
  RunningDaemon rig(1);
  client::MemcacheConnection conn(rig.daemon.port());
  ASSERT_TRUE(conn.set("k", "v"));
  (void)conn.get("k");
  // A traced text-protocol get populates the daemon-side span collector.
  (void)conn.get("k", /*trace_id=*/0xabcdef12u);

  MetricsHttpServer http(
      0, [&] { return rig.daemon.metrics_text(); },
      [&](std::uint64_t since) { return rig.daemon.trace().jsonl_since(since); },
      [&] { return rig.daemon.spans().jsonl(); });
  ASSERT_TRUE(http.ok());
  std::thread http_thread([&http] { http.run(); });

  const std::string metrics = http_get(http.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE proteus_cache_cmd_get_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("proteus_cache_get_hits_total 2"), std::string::npos);
  EXPECT_NE(metrics.find("proteus_daemon_op_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("proteus_spans_recorded_total"), std::string::npos);
  EXPECT_NE(metrics.find("proteus_trace_dropped_total"), std::string::npos);

  const std::string trace = http_get(http.port(), "/trace");
  EXPECT_NE(trace.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(trace.find("application/x-ndjson"), std::string::npos);
  // Incremental fetch far past the ring returns an empty 200 body.
  const std::string tail = http_get(http.port(), "/trace?since=999999999");
  EXPECT_NE(tail.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(tail.find("Content-Length: 0"), std::string::npos);

  const std::string spans = http_get(http.port(), "/spans");
  EXPECT_NE(spans.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(spans.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(spans.find("\"trace\":\"00000000abcdef12\""), std::string::npos);
  EXPECT_NE(spans.find("\"kind\":\"server_op\""), std::string::npos);

  const std::string index = http_get(http.port(), "/");
  EXPECT_NE(index.find("200 OK"), std::string::npos);
  EXPECT_NE(index.find("/spans"), std::string::npos);
  EXPECT_NE(http_get(http.port(), "/nope").find("404"), std::string::npos);

  http.stop();
  http_thread.join();
}

}  // namespace
}  // namespace proteus::net
