#include "hashring/routing_table.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proteus::ring {
namespace {

TEST(RoutingTable, MatchesPlacementExactlyRandomKeys) {
  ProteusPlacement placement(10);
  for (int n : {1, 4, 7, 10}) {
    RoutingTable table(placement, n);
    Rng rng(static_cast<std::uint64_t>(n));
    for (int i = 0; i < 100'000; ++i) {
      const std::uint64_t h = rng.next_u64();
      ASSERT_EQ(table.server_for(h), placement.server_for(h, n))
          << "n=" << n << " h=" << h;
    }
  }
}

TEST(RoutingTable, MatchesAtRangeBoundaries) {
  // Adversarial positions: exactly at, one before, and one after every
  // host-range boundary.
  ProteusPlacement placement(12);
  for (int n : {3, 12}) {
    RoutingTable table(placement, n);
    for (std::size_t i = 0; i < placement.num_host_ranges(); ++i) {
      const std::uint64_t start = placement.range_start(i);
      for (std::uint64_t pos :
           {start, start == 0 ? std::uint64_t{0} : start - 1, start + 1}) {
        if (pos >= kRingSpace) continue;
        // Reconstruct a hash whose ring_position is `pos`.
        const std::uint64_t h = pos << 2;
        ASSERT_EQ(table.server_for(h), placement.server_for(h, n))
            << "n=" << n << " pos=" << pos;
      }
    }
  }
}

TEST(RoutingTable, CoarseBucketsStillExact) {
  ProteusPlacement placement(24);
  RoutingTable coarse(placement, 24, /*bucket_bits=*/4);  // 16 buckets only
  Rng rng(9);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t h = rng.next_u64();
    ASSERT_EQ(coarse.server_for(h), placement.server_for(h, 24));
  }
}

TEST(RoutingTable, LargeClusterExact) {
  ProteusPlacement placement(64);
  RoutingTable table(placement, 40);
  Rng rng(11);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t h = rng.next_u64();
    ASSERT_EQ(table.server_for(h), placement.server_for(h, 40));
  }
}

TEST(RoutingTable, MergesRangesAtSmallActiveCounts) {
  ProteusPlacement placement(32);
  // At n=1 every range resolves to server 0: the whole table collapses.
  RoutingTable tiny(placement, 1);
  RoutingTable full(placement, 32);
  EXPECT_LT(tiny.memory_bytes(), full.memory_bytes());
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(tiny.server_for(rng.next_u64()), 0);
  }
}

TEST(RoutingTable, ReportsConfiguration) {
  ProteusPlacement placement(8);
  RoutingTable table(placement, 5);
  EXPECT_EQ(table.n_active(), 5);
  EXPECT_GT(table.memory_bytes(), 0u);
}

}  // namespace
}  // namespace proteus::ring
