#include "workload/rbe.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace proteus::workload {
namespace {

DiurnalConfig flat_rate(double rate) {
  DiurnalConfig cfg;
  cfg.mean_rate = rate;
  cfg.amplitude = 0;
  cfg.jitter = 0;
  return cfg;
}

RbeConfig small_rbe() {
  RbeConfig cfg;
  cfg.num_pages = 1000;
  cfg.pages_per_user = 10;
  cfg.control_interval = kSecond;
  cfg.metric_slot = 10 * kSecond;
  return cfg;
}

TEST(Rbe, PopulationTracksTargetRate) {
  sim::Simulation sim;
  // rate 100 rps * 0.5 s think -> ~50 users.
  RbeCluster rbe(sim, small_rbe(), DiurnalModel(flat_rate(100)),
                 [&sim](const std::string&, std::function<void()> done) {
                   sim.schedule_after(kMillisecond, std::move(done));
                 });
  rbe.start(20 * kSecond);
  sim.run_until(10 * kSecond);
  EXPECT_NEAR(static_cast<double>(rbe.live_users()), 50.0, 5.0);
}

TEST(Rbe, ThroughputApproximatesOfferedRate) {
  sim::Simulation sim;
  RbeCluster rbe(sim, small_rbe(), DiurnalModel(flat_rate(100)),
                 [&sim](const std::string&, std::function<void()> done) {
                   sim.schedule_after(kMillisecond, std::move(done));
                 });
  const SimTime horizon = 60 * kSecond;
  rbe.start(horizon);
  sim.run();
  // 100 rps for 60 s ~ 6000 requests (fast responses, full think cycles).
  EXPECT_NEAR(static_cast<double>(rbe.completed_requests()), 6000.0, 900.0);
}

TEST(Rbe, SlowResponsesThrottleClosedLoop) {
  sim::Simulation sim;
  RbeCluster rbe(sim, small_rbe(), DiurnalModel(flat_rate(100)),
                 [&sim](const std::string&, std::function<void()> done) {
                   sim.schedule_after(500 * kMillisecond, std::move(done));
                 });
  rbe.start(60 * kSecond);
  sim.run();
  // Cycle time doubles (0.5 think + 0.5 response) -> ~half the requests.
  EXPECT_LT(rbe.completed_requests(), 4000u);
  EXPECT_GT(rbe.completed_requests(), 2000u);
}

TEST(Rbe, LatenciesLandInSlotHistograms) {
  sim::Simulation sim;
  RbeCluster rbe(sim, small_rbe(), DiurnalModel(flat_rate(50)),
                 [&sim](const std::string&, std::function<void()> done) {
                   sim.schedule_after(2 * kMillisecond, std::move(done));
                 });
  rbe.start(30 * kSecond);
  sim.run();
  const auto& slots = rbe.slot_histograms();
  ASSERT_GE(slots.size(), 3u);
  std::uint64_t total = 0;
  for (const auto& h : slots) total += h.count();
  EXPECT_EQ(total, rbe.completed_requests());
  // Recorded latency equals the injected 2 ms.
  EXPECT_NEAR(rbe.overall_histogram().percentile_us(0.5), 2000.0, 100.0);
}

TEST(Rbe, KeysComeFromConfiguredPageSpace) {
  sim::Simulation sim;
  RbeConfig cfg = small_rbe();
  cfg.num_pages = 10;
  bool all_valid = true;
  RbeCluster rbe(sim, cfg, DiurnalModel(flat_rate(20)),
                 [&](const std::string& key, std::function<void()> done) {
                   if (key.rfind("page:", 0) != 0) all_valid = false;
                   const int id = std::stoi(key.substr(5));
                   if (id < 0 || id >= 10) all_valid = false;
                   sim.schedule_after(kMillisecond, std::move(done));
                 });
  rbe.start(10 * kSecond);
  sim.run();
  EXPECT_TRUE(all_valid);
  EXPECT_GT(rbe.completed_requests(), 0u);
}

TEST(Rbe, ExponentialSessionsChurnPageSets) {
  // With short sessions, fresh users keep arriving and the set of distinct
  // pages requested keeps growing; with unbounded sessions it saturates at
  // (population x pages_per_user).
  const auto distinct_pages = [](double mean_session_sec) {
    sim::Simulation sim;
    RbeConfig cfg = small_rbe();
    cfg.num_pages = 100'000;
    cfg.pages_per_user = 5;
    cfg.mean_session_sec = mean_session_sec;
    std::set<std::string> seen;
    RbeCluster rbe(sim, cfg, DiurnalModel(flat_rate(40)),
                   [&](const std::string& key, std::function<void()> done) {
                     seen.insert(key);
                     sim.schedule_after(kMillisecond, std::move(done));
                   });
    rbe.start(120 * kSecond);
    sim.run();
    return std::pair(seen.size(), rbe.sessions_started());
  };

  const auto [eternal_pages, eternal_sessions] = distinct_pages(0);
  const auto [churned_pages, churned_sessions] = distinct_pages(10.0);
  // ~20 users with unbounded sessions -> at most 100 distinct pages.
  EXPECT_LE(eternal_pages, 100u);
  EXPECT_LE(eternal_sessions, 25u);
  // 120 s / 10 s sessions -> hundreds of sessions, far more distinct pages.
  EXPECT_GT(churned_sessions, 100u);
  EXPECT_GT(churned_pages, 2 * eternal_pages);
}

TEST(Rbe, SessionChurnPreservesThroughput) {
  sim::Simulation sim;
  RbeConfig cfg = small_rbe();
  cfg.mean_session_sec = 5.0;  // heavy churn
  RbeCluster rbe(sim, cfg, DiurnalModel(flat_rate(100)),
                 [&sim](const std::string&, std::function<void()> done) {
                   sim.schedule_after(kMillisecond, std::move(done));
                 });
  rbe.start(60 * kSecond);
  sim.run();
  EXPECT_NEAR(static_cast<double>(rbe.completed_requests()), 6000.0, 900.0);
}

TEST(Rbe, PopulationShrinksWhenRateDrops) {
  sim::Simulation sim;
  // Steeply declining rate via a long-period sine starting at its peak.
  DiurnalConfig cfg;
  cfg.mean_rate = 100;
  cfg.amplitude = 0.9;
  cfg.period = 80 * kSecond;
  cfg.phase = -20 * kSecond;  // sin peaks at t=0
  cfg.jitter = 0;
  RbeCluster rbe(sim, small_rbe(), DiurnalModel(cfg),
                 [&sim](const std::string&, std::function<void()> done) {
                   sim.schedule_after(kMillisecond, std::move(done));
                 });
  rbe.start(45 * kSecond);
  sim.run_until(2 * kSecond);
  const std::size_t at_peak = rbe.live_users();
  sim.run_until(40 * kSecond);  // near the valley
  const std::size_t at_valley = rbe.live_users();
  EXPECT_GT(at_peak, 2 * at_valley);
}

}  // namespace
}  // namespace proteus::workload
