// Per-request distributed tracing (obs/span.h): the token codec, the
// tiling invariant, the collector ring — and the end-to-end guarantee the
// layer exists for: on a LIVE fleet, through a provisioning resize, under
// fault injection, every sampled get() yields a complete span tree whose
// per-cause child durations sum to the end-to-end latency (±1%), with the
// trace id propagated to the daemons over the wire.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/memcache_client.h"
#include "net/fault_injector.h"
#include "net/memcache_daemon.h"
#include "obs/span.h"

namespace proteus::obs {
namespace {

// --- wire token codec --------------------------------------------------------

TEST(TraceToken, RoundTripsEveryShape) {
  for (std::uint64_t id : {std::uint64_t{1}, std::uint64_t{0xdeadbeefULL},
                           ~std::uint64_t{0}}) {
    const std::string token = encode_trace_token(id);
    ASSERT_EQ(token.size(), 17u);
    EXPECT_EQ(token.front(), 'O');
    std::uint64_t back = 0;
    ASSERT_TRUE(decode_trace_token(token, back)) << token;
    EXPECT_EQ(back, id);
  }
}

TEST(TraceToken, RejectsEverythingThatIsNotAToken) {
  std::uint64_t out = 7;
  // Ordinary keys that merely start with 'O'.
  EXPECT_FALSE(decode_trace_token("Oscar", out));
  EXPECT_FALSE(decode_trace_token("O", out));
  // Wrong length.
  EXPECT_FALSE(decode_trace_token("O123", out));
  EXPECT_FALSE(decode_trace_token("O00000000000000001", out));
  // Uppercase hex is a key, not a token (encode emits lowercase only).
  EXPECT_FALSE(decode_trace_token("O00000000DEADBEEF", out));
  // Right length, wrong prefix.
  EXPECT_FALSE(decode_trace_token("X0000000000000001", out));
  EXPECT_EQ(out, 7u) << "failed decode must not touch the output";
}

// --- the tiling invariant ----------------------------------------------------

TEST(TraceContext, ChildrenTileTheRootExactly) {
  SpanCollector spans(64, /*sample_every=*/1);
  TraceContext ctx = TraceContext::begin(&spans, 1000);
  ASSERT_TRUE(ctx.active());
  ctx.in_transition = true;
  ctx.child(1010, SpanKind::kRoute);
  ctx.child(1030, SpanKind::kDigestConsult, 2, SpanCause::kDigestHot, "k");
  ctx.child(1100, SpanKind::kMigrationFetch, 1, SpanCause::kHit, "k");
  ctx.root_cause = SpanCause::kOldHit;
  ctx.finish(1120, 1000, "k");

  const std::vector<SpanRecord> all = spans.snapshot();
  ASSERT_EQ(all.size(), 5u);  // 3 children + closing respond + root
  const SpanRecord& root = all.back();
  EXPECT_EQ(root.kind, SpanKind::kRequest);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.duration_us, 120);
  EXPECT_EQ(root.cause, SpanCause::kOldHit);
  EXPECT_TRUE(root.in_transition);

  SimTime child_sum = 0;
  SimTime cursor = root.start_us;
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_EQ(all[i].trace_id, root.trace_id);
    EXPECT_EQ(all[i].parent_id, root.span_id);
    EXPECT_EQ(all[i].start_us, cursor) << "children must tile, no gaps";
    cursor = all[i].start_us + all[i].duration_us;
    child_sum += all[i].duration_us;
  }
  EXPECT_EQ(all[3].kind, SpanKind::kRespond);
  EXPECT_EQ(child_sum, root.duration_us);
}

TEST(TraceContext, InactiveContextIsInert) {
  TraceContext none;  // no collector
  EXPECT_FALSE(none.active());
  none.child(10, SpanKind::kRoute);
  none.finish(20, 0, "k");  // must not crash

  SpanCollector off(16, /*sample_every=*/0);
  TraceContext ctx = TraceContext::begin(&off, 0);
  EXPECT_FALSE(ctx.active());
  ctx.child(10, SpanKind::kRoute);
  ctx.finish(20, 0, "k");
  EXPECT_EQ(off.total_recorded(), 0u);
}

// --- the collector -----------------------------------------------------------

TEST(SpanCollector, RingOverwritesOldestAndCountsDrops) {
  SpanCollector spans(4, /*sample_every=*/1);
  for (int i = 0; i < 10; ++i) {
    SpanRecord s;
    s.trace_id = static_cast<std::uint64_t>(i + 1);
    s.span_id = static_cast<std::uint64_t>(i + 1);
    spans.record(std::move(s));
  }
  EXPECT_EQ(spans.total_recorded(), 10u);
  EXPECT_EQ(spans.dropped(), 6u);
  const auto kept = spans.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().trace_id, 7u);  // oldest retained
  EXPECT_EQ(kept.back().trace_id, 10u);
}

TEST(SpanCollector, HeadSamplingRates) {
  SpanCollector every(16, /*sample_every=*/1);
  SpanCollector never(16, /*sample_every=*/0);
  SpanCollector one_in_4(16, /*sample_every=*/4);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(every.should_sample());
    EXPECT_FALSE(never.should_sample());
    if (one_in_4.should_sample()) ++sampled;
  }
  EXPECT_EQ(sampled, 25);
}

TEST(SpanCollector, JsonRendersIdsAsHex16) {
  SpanRecord s;
  s.trace_id = 0xabc;
  s.span_id = 1;
  s.parent_id = 2;
  s.kind = SpanKind::kMigrationFetch;
  s.start_us = 5;
  s.duration_us = 9;
  s.server = 3;
  s.cause = SpanCause::kHit;
  s.in_transition = true;
  s.key = "page:1";
  const std::string json = to_json(s);
  EXPECT_NE(json.find("\"trace\":\"0000000000000abc\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":\"0000000000000002\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"migration_fetch\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"hit\""), std::string::npos);
  EXPECT_NE(json.find("\"transition\":1"), std::string::npos);
  EXPECT_NE(json.find("\"server\":3"), std::string::npos);
}

}  // namespace
}  // namespace proteus::obs

// --- live fleet: complete, attributed span trees under faults ----------------

namespace proteus::client {
namespace {

class SpanLiveFleet : public ::testing::Test {
 protected:
  static constexpr int kServers = 3;

  void SetUp() override {
    daemons_.resize(kServers);
    threads_.resize(kServers);
    for (int i = 0; i < kServers; ++i) {
      cache::CacheConfig cfg;
      cfg.memory_budget_bytes = 8 << 20;
      auto& d = daemons_[static_cast<std::size_t>(i)];
      d = std::make_unique<net::MemcacheDaemon>(cfg, /*port=*/0);
      ASSERT_TRUE(d->ok());
      d->set_server_id(i);
      ports_.push_back(d->port());
    }
  }

  void TearDown() override {
    for (int i = 0; i < kServers; ++i) {
      auto& d = daemons_[static_cast<std::size_t>(i)];
      if (!d) continue;
      d->stop();
      auto& t = threads_[static_cast<std::size_t>(i)];
      if (t.joinable()) t.join();
    }
  }

  // Daemons start AFTER the test had a chance to install fault wrappers.
  void run_daemons() {
    for (int i = 0; i < kServers; ++i) {
      threads_[static_cast<std::size_t>(i)] = std::thread(
          [daemon = daemons_[static_cast<std::size_t>(i)].get()] {
            daemon->run();
          });
    }
  }

  std::vector<std::unique_ptr<net::MemcacheDaemon>> daemons_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::thread> threads_;
};

// The acceptance scenario: a resize under fault injection, with EVERY get
// traced. Each trace must form a complete tree (one root, >= 1 tiled
// children) whose child durations sum to the root's end-to-end latency
// within 1%, and the in-transition traces must name a transition mechanism
// (digest consult / migration fetch) as the cause.
TEST_F(SpanLiveFleet, ResizeUnderFaultsYieldsCompleteAttributedTrees) {
  net::FaultInjector injector;
  daemons_[1]->set_handler_wrapper(
      [&](std::unique_ptr<net::ConnectionHandler> inner) {
        return injector.wrap(std::move(inner));
      });
  run_daemons();

  obs::SpanCollector spans(/*capacity=*/1u << 15, /*sample_every=*/1);
  ProteusClient::Options opt;
  opt.endpoints = ports_;
  opt.ttl = 60 * kSecond;
  opt.connect_timeout = 200 * kMillisecond;
  opt.op_timeout = 200 * kMillisecond;
  opt.max_attempts = 2;
  opt.spans = &spans;
  // The forest accounting below expects deterministic trees; keep the
  // health machine error-driven so wall-clock jitter cannot quarantine a
  // healthy daemon mid-resize (latency accrual is gray_failure_test's job).
  opt.health.min_deviation_usec = 1e9;
  std::uint64_t backend = 0;
  ProteusClient web(opt, [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });

  constexpr int kKeys = 60;
  int gets_issued = 0;
  const auto get_all = [&](SimTime now) {
    for (int i = 0; i < kKeys; ++i) {
      EXPECT_EQ(web.get("page:" + std::to_string(i), now),
                "db:page:" + std::to_string(i));
      ++gets_issued;
    }
  };

  get_all(0);  // warm: every key fills from the backend

  // Sabotage a few requests mid-stream: affected gets retry/fail over but
  // must still produce complete, sum-consistent trees.
  injector.inject(net::FaultKind::kDropConnection, 2);
  get_all(kSecond);
  injector.reset();

  // Shrink 3 -> 2 and read everything during the §IV transition window.
  ASSERT_TRUE(web.resize(2, 2 * kSecond));
  ASSERT_TRUE(web.in_transition());
  get_all(3 * kSecond);
  EXPECT_TRUE(web.in_transition());

  // --- verify the forest -----------------------------------------------------
  const std::vector<obs::SpanRecord> all = spans.snapshot();
  ASSERT_EQ(spans.dropped(), 0u) << "ring must hold the whole test";

  struct Tree {
    const obs::SpanRecord* root = nullptr;
    std::vector<const obs::SpanRecord*> children;
  };
  std::map<std::uint64_t, Tree> forest;
  for (const obs::SpanRecord& s : all) {
    Tree& t = forest[s.trace_id];
    if (s.kind == obs::SpanKind::kRequest) {
      EXPECT_EQ(t.root, nullptr) << "one root per trace";
      t.root = &s;
    } else {
      ASSERT_NE(s.parent_id, 0u);
      t.children.push_back(&s);
    }
  }
  EXPECT_EQ(forest.size(), static_cast<std::size_t>(gets_issued))
      << "every get must yield exactly one trace";

  int transition_traces = 0, mechanism_traces = 0, fault_children = 0;
  for (const auto& [id, tree] : forest) {
    ASSERT_NE(tree.root, nullptr) << "trace without a root";
    ASSERT_FALSE(tree.children.empty()) << "root without children";
    SimTime child_sum = 0;
    bool mechanism = false;
    for (const obs::SpanRecord* c : tree.children) {
      EXPECT_EQ(c->parent_id, tree.root->span_id);
      EXPECT_GE(c->duration_us, 0);
      child_sum += c->duration_us;
      if (c->kind == obs::SpanKind::kDigestConsult ||
          c->kind == obs::SpanKind::kMigrationFetch ||
          c->kind == obs::SpanKind::kMigrationStore) {
        mechanism = true;
      }
      if (c->cause == obs::SpanCause::kReset ||
          c->cause == obs::SpanCause::kTimeout ||
          c->cause == obs::SpanCause::kDown ||
          c->kind == obs::SpanKind::kRetry) {
        ++fault_children;
      }
    }
    // The attribution contract: per-cause child durations sum to the
    // end-to-end latency within 1% (clocks are shared, so in practice the
    // tiling is exact; the slack covers only rounding).
    const double e2e = static_cast<double>(tree.root->duration_us);
    const double diff =
        std::abs(static_cast<double>(child_sum) - e2e);
    EXPECT_LE(diff, std::max(0.01 * e2e, 1.0))
        << "trace " << id << ": children sum to " << child_sum
        << " us but the root took " << e2e << " us";
    if (tree.root->in_transition) {
      ++transition_traces;
      if (mechanism) ++mechanism_traces;
    }
  }
  EXPECT_EQ(transition_traces, kKeys)
      << "every get of the third round overlapped the transition";
  EXPECT_GT(mechanism_traces, 0)
      << "in-transition traces must show digest/migration children";
  EXPECT_GT(fault_children, 0)
      << "the injected faults must be visible as retry/reset children";

  // --- wire propagation: daemons saw the SAME trace ids ----------------------
  std::set<std::uint64_t> client_ids;
  for (const auto& [id, tree] : forest) client_ids.insert(id);
  int correlated = 0;
  bool saw_op = false, saw_parse = false;
  for (int i = 0; i < kServers; ++i) {
    for (const obs::SpanRecord& s :
         daemons_[static_cast<std::size_t>(i)]->spans().snapshot()) {
      EXPECT_EQ(s.server, i) << "daemon spans must carry their server id";
      EXPECT_EQ(s.parent_id, 0u);
      if (client_ids.count(s.trace_id) != 0U) ++correlated;
      saw_op |= s.kind == obs::SpanKind::kServerOp;
      saw_parse |= s.kind == obs::SpanKind::kServerParse;
    }
  }
  EXPECT_GT(correlated, gets_issued)
      << "server-side spans must correlate with client traces by id";
  EXPECT_TRUE(saw_op);
  EXPECT_TRUE(saw_parse);
}

// Sampling is decided once at the root: with tracing disabled on the
// client, daemons record nothing either (no token ever crosses the wire).
TEST_F(SpanLiveFleet, NoSamplingMeansNoSpansAnywhere) {
  run_daemons();
  obs::SpanCollector spans(64, /*sample_every=*/0);
  ProteusClient::Options opt;
  opt.endpoints = ports_;
  opt.spans = &spans;
  ProteusClient web(opt, [](std::string_view key) {
    return "db:" + std::string(key);
  });
  for (int i = 0; i < 20; ++i) {
    web.get("page:" + std::to_string(i), 0);
  }
  EXPECT_EQ(spans.total_recorded(), 0u);
  for (int i = 0; i < kServers; ++i) {
    EXPECT_EQ(daemons_[static_cast<std::size_t>(i)]->spans().total_recorded(),
              0u)
        << "an untraced request must not produce server spans";
  }
}

}  // namespace
}  // namespace proteus::client
