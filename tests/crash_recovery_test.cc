// Crash-recovery drills for the three fencing layers (docs/OPERATIONS.md
// §11): the durable transition journal (a coordinator crash mid-resize must
// resume or roll forward, never silently lose the plan), epoch fencing on
// the wire (a web tier routing on a stale view must have its mutations
// refused, with zero stale acks), and restart-aware digests (a daemon that
// cold-restarts must be recognized by its new incarnation so its dead
// digest stops attracting phantom old-location probes). The live-fleet
// cases are the chaos half: daemons killed and cold-restarted under a
// running ProteusClient, which must converge back to correct K/n serving
// with bounded tail latency.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/memcache_client.h"
#include "common/hash.h"
#include "core/proteus.h"
#include "core/replicated_proteus.h"
#include "core/transition_journal.h"
#include "hashring/proteus_placement.h"
#include "net/memcache_daemon.h"

namespace proteus {
namespace {

std::string backend_of(std::string_view key) {
  return "db:" + std::string(key);
}

std::string journal_path_for(const char* name) {
  const std::string path =
      ::testing::TempDir() + "proteus_journal_" + name + ".wal";
  std::remove(path.c_str());
  return path;
}

ProteusOptions journaled_options(const std::string& path) {
  ProteusOptions opt;
  opt.max_servers = 4;
  opt.per_server.memory_budget_bytes = 4 << 20;
  opt.ttl = 60 * kSecond;
  opt.journal_path = path;
  return opt;
}

// --- layer 2: the durable journal ------------------------------------------

TEST(TransitionJournalTest, ResumesInterruptedTransitionAfterCrash) {
  const std::string path =
      journal_path_for("ResumesInterruptedTransitionAfterCrash");
  const ProteusOptions opt = journaled_options(path);

  // A coordinator starts a shrink and "crashes" (is destroyed) mid-drain.
  {
    Proteus a(opt, backend_of);
    for (int i = 0; i < 200; ++i) a.get("key:" + std::to_string(i), 0);
    a.resize(2, kSecond);
    ASSERT_TRUE(a.in_transition());
    ASSERT_EQ(a.cluster_epoch(), 1u);
    ASSERT_GT(a.journal().appended(), 0u);
  }

  // The restarted coordinator replays the journal: same epoch, same
  // transition, still draining — the plan survived the crash.
  Proteus b(opt, backend_of);
  EXPECT_GT(b.stats().journal_records_replayed, 0u);
  EXPECT_EQ(b.stats().journal_transitions_resumed, 1u);
  EXPECT_TRUE(b.in_transition());
  EXPECT_EQ(b.cluster_epoch(), 1u);
  EXPECT_EQ(b.active_servers(), 2);

  // Serving stays correct throughout (cache contents died with the old
  // process, so everything refills — but never with a wrong value).
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key:" + std::to_string(i);
    EXPECT_EQ(b.get(key, 2 * kSecond), backend_of(key));
  }

  // Past the replayed drain deadline the resumed transition finalizes.
  b.get("key:0", kSecond + opt.ttl + kSecond);
  EXPECT_FALSE(b.in_transition());
  EXPECT_EQ(b.powered_servers(), 2);
  EXPECT_EQ(b.cluster_epoch(), 1u);

  // Finalize compacted the journal: a third incarnation restores the epoch
  // from the kFinalize record but has no transition to resume.
  Proteus c(opt, backend_of);
  EXPECT_EQ(c.stats().journal_transitions_resumed, 0u);
  EXPECT_FALSE(c.in_transition());
  EXPECT_EQ(c.cluster_epoch(), 1u);
}

TEST(TransitionJournalTest, RollsForwardWhenCrashOutlivedDrainWindow) {
  const std::string path =
      journal_path_for("RollsForwardWhenCrashOutlivedDrainWindow");
  ProteusOptions opt = journaled_options(path);
  opt.ttl = 5 * kSecond;

  {
    Proteus a(opt, backend_of);
    a.get("key:0", 0);
    a.resize(2, kSecond);  // drain window ends at 6s
    ASSERT_TRUE(a.in_transition());
  }

  // The replacement comes up long after the drain deadline: the replay
  // re-enters the transition and the first tick rolls it forward.
  Proteus b(opt, backend_of);
  EXPECT_EQ(b.stats().journal_transitions_resumed, 1u);
  b.tick(60 * kSecond);
  EXPECT_FALSE(b.in_transition());
  EXPECT_EQ(b.powered_servers(), 2);
  EXPECT_EQ(b.cluster_epoch(), 1u);
}

TEST(TransitionJournalTest, ReplicatedFacadeResumesFromJournal) {
  const std::string path = journal_path_for("ReplicatedFacadeResumes");
  ReplicatedOptions opt;
  opt.max_servers = 4;
  opt.replicas = 2;
  opt.per_server.memory_budget_bytes = 4 << 20;
  opt.ttl = 60 * kSecond;
  opt.journal_path = path;

  {
    ReplicatedProteus a(opt, backend_of);
    for (int i = 0; i < 50; ++i) a.get("key:" + std::to_string(i), 0);
    a.resize(2, kSecond);
    ASSERT_TRUE(a.in_transition());
  }

  ReplicatedProteus b(opt, backend_of);
  EXPECT_TRUE(b.in_transition());
  EXPECT_EQ(b.cluster_epoch(), 1u);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key:" + std::to_string(i);
    EXPECT_EQ(b.get(key, 2 * kSecond), backend_of(key));
  }
  b.tick(kSecond + opt.ttl + kSecond);
  EXPECT_FALSE(b.in_transition());
}

TEST(TransitionJournalTest, TornTailIsDetectedTruncatedAndAppendable) {
  const std::string path = journal_path_for("TornTail");

  core::JournalRecord begin;
  begin.kind = core::JournalRecordKind::kResizeBegin;
  begin.a = 7;                                // epoch
  begin.b = (std::uint64_t{3} << 32) | 2;     // 3 -> 2
  begin.c = 123 * kSecond;                    // drain end
  core::JournalRecord drain;
  drain.kind = core::JournalRecordKind::kDrainBegin;
  drain.server = 2;

  // A crash mid-append leaves a torn tail: one intact record followed by
  // the first half of the next one.
  const std::string intact = core::encode_journal_record(begin);
  const std::string torn = core::encode_journal_record(drain);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(intact.data(), static_cast<std::streamsize>(intact.size()));
    out.write(torn.data(), static_cast<std::streamsize>(torn.size() / 2));
  }

  core::TransitionJournal j;
  std::vector<core::JournalRecord> replayed;
  ASSERT_TRUE(j.open(path, replayed));
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].kind, core::JournalRecordKind::kResizeBegin);
  EXPECT_EQ(replayed[0].a, 7u);
  EXPECT_EQ(replayed[0].b, (std::uint64_t{3} << 32) | 2);
  EXPECT_GE(j.torn_records(), 1u);

  // The tail was truncated, so appending resumes from the last durable
  // record — a reopen sees exactly [begin, drain] and no torn bytes.
  j.append(drain);
  j.close();
  core::TransitionJournal j2;
  std::vector<core::JournalRecord> replayed2;
  ASSERT_TRUE(j2.open(path, replayed2));
  ASSERT_EQ(replayed2.size(), 2u);
  EXPECT_EQ(replayed2[1].kind, core::JournalRecordKind::kDrainBegin);
  EXPECT_EQ(replayed2[1].server, 2);
  EXPECT_EQ(j2.torn_records(), 0u);
}

TEST(TransitionJournalTest, CorruptRecordIsDroppedNotReplayed) {
  const std::string path = journal_path_for("CorruptRecord");

  core::JournalRecord begin;
  begin.kind = core::JournalRecordKind::kResizeBegin;
  begin.a = 1;
  core::JournalRecord snap;
  snap.kind = core::JournalRecordKind::kDigestSnapshot;
  snap.server = 0;
  snap.payload = "digest-bytes-digest-bytes";

  std::string bytes = core::encode_journal_record(begin);
  std::string bad = core::encode_journal_record(snap);
  bad[bad.size() / 2] ^= 0x5a;  // flip one byte: the CRC must catch it
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }

  core::TransitionJournal j;
  std::vector<core::JournalRecord> replayed;
  ASSERT_TRUE(j.open(path, replayed));
  ASSERT_EQ(replayed.size(), 1u) << "the CRC-failing record must be dropped";
  EXPECT_GE(j.torn_records(), 1u);
}

TEST(TransitionJournalTest, InterpretFindsPendingTransitionAndTailEpoch) {
  std::vector<core::JournalRecord> records;
  core::JournalRecord r;
  r.kind = core::JournalRecordKind::kResizeBegin;
  r.a = 1;
  r.b = (std::uint64_t{4} << 32) | 2;
  r.c = 10 * kSecond;
  records.push_back(r);
  r = {};
  r.kind = core::JournalRecordKind::kFinalize;
  r.a = 1;
  records.push_back(r);
  r = {};
  r.kind = core::JournalRecordKind::kResizeBegin;
  r.a = 2;
  r.b = (std::uint64_t{2} << 32) | 3;
  r.c = 20 * kSecond;
  records.push_back(r);
  r = {};
  r.kind = core::JournalRecordKind::kDrainBegin;
  r.server = 3;
  records.push_back(r);

  std::uint64_t epoch = 0;
  const auto pending = core::interpret_journal(records, epoch);
  EXPECT_EQ(epoch, 2u);
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(pending->epoch, 2u);
  EXPECT_EQ(pending->n_old, 2);
  EXPECT_EQ(pending->n_new, 3);
  EXPECT_EQ(pending->drain_end, 20 * kSecond);

  r = {};
  r.kind = core::JournalRecordKind::kFinalize;
  r.a = 2;
  records.push_back(r);
  epoch = 0;
  EXPECT_FALSE(core::interpret_journal(records, epoch).has_value());
  EXPECT_EQ(epoch, 2u);
}

}  // namespace
}  // namespace proteus

// --- layers 1 and 3: epoch fencing + incarnations on the live wire ---------

namespace proteus::client {
namespace {

std::int64_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

class LiveFleet : public ::testing::Test {
 protected:
  static constexpr int kServers = 3;

  void SetUp() override {
    daemons_.resize(kServers);
    threads_.resize(kServers);
    ports_.resize(kServers);
    for (int i = 0; i < kServers; ++i) start(i, /*port=*/0);
  }

  void TearDown() override {
    for (int i = 0; i < kServers; ++i) kill(i);
  }

  void start(int i, std::uint16_t port) {
    cache::CacheConfig cfg;
    cfg.memory_budget_bytes = 8 << 20;
    auto& d = daemons_[static_cast<std::size_t>(i)];
    d = std::make_unique<net::MemcacheDaemon>(cfg, port);
    ASSERT_TRUE(d->ok());
    ports_[static_cast<std::size_t>(i)] = d->port();
    threads_[static_cast<std::size_t>(i)] =
        std::thread([daemon = d.get()] { daemon->run(); });
  }

  void kill(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    if (!d) return;
    d->stop();
    threads_[static_cast<std::size_t>(i)].join();
    d.reset();
  }

  // Cold restart on the same port: fresh process state — new incarnation,
  // empty memory, digest and epoch gone. The kill -9 analogue.
  void restart(int i) { start(i, ports_[static_cast<std::size_t>(i)]); }

  ProteusClient::Options fast_options() {
    ProteusClient::Options opt;
    opt.endpoints = ports_;
    opt.ttl = 60 * kSecond;
    opt.connect_timeout = 200 * kMillisecond;
    opt.op_timeout = 200 * kMillisecond;
    opt.max_attempts = 2;
    opt.breaker.failure_threshold = 3;
    opt.breaker.backoff.base_delay = 500 * kMillisecond;
    opt.breaker.backoff.max_delay = 5 * kSecond;
    // Error-driven health only: exact hit/miss assertions must not move
    // with wall-clock scheduling jitter on a loaded CI core.
    opt.health.min_deviation_usec = 1e9;
    return opt;
  }

  // The ring-0 primary of `key` with `n` of kServers active.
  static int primary_of(std::string_view key, int n = kServers) {
    const ring::ProteusPlacement placement(kServers);
    return placement.server_for(hash_bytes(key), n);
  }

  // Raw get against one daemon, bypassing routing — the ground truth of
  // what a daemon actually acknowledged and stored.
  std::optional<std::string> raw_get(int i, std::string_view key) {
    MemcacheConnection conn(ports_[static_cast<std::size_t>(i)]);
    return conn.get(key);
  }

  std::vector<std::unique_ptr<net::MemcacheDaemon>> daemons_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::thread> threads_;
};

TEST_F(LiveFleet, StaleEpochMutationsAreFencedWithZeroAcks) {
  std::uint64_t backend = 0;
  const auto db = [&](std::string_view key) {
    ++backend;
    return backend_of(key);
  };

  // Client A actuates a resize, establishing epoch 1 fleet-wide.
  ProteusClient a(fast_options(), db);
  for (int i = 0; i < 30; ++i) a.get("seed:" + std::to_string(i), 0);
  ASSERT_TRUE(a.resize(2, kSecond));
  ASSERT_EQ(a.cluster_epoch(), 1u);
  EXPECT_GE(a.stats().epoch_pushes, 3u) << "resize must teach every daemon";

  // Client B connects to every daemon and adopts epoch 1 via the hello.
  ProteusClient b(fast_options(), db);
  for (int i = 0; i < 30; ++i) b.get("seed:" + std::to_string(i), 2 * kSecond);
  ASSERT_EQ(b.cluster_epoch(), 1u) << "hello must sync the fencing epoch";

  // Pin a connection to the victim key's primary while the fleet still
  // fences epoch 1: this write passes, and is the value that must survive
  // the stale write below.
  b.put("fence:victim", "warm-write", 2 * kSecond + kSecond / 2);
  ASSERT_EQ(raw_get(primary_of("fence:victim"), "fence:victim"),
            std::optional<std::string>("warm-write"));

  // A third party (another web tier we never see) moves the fleet to epoch
  // 2 behind B's back. B's established connections now route on a stale
  // view.
  for (int i = 0; i < kServers; ++i) {
    MemcacheConnection conn(ports_[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(conn.push_epoch(2));
  }

  // B's next mutation is stamped E1 and must be refused — and crucially,
  // must NOT be acknowledged or stored by any daemon.
  b.put("fence:victim", "stale-write", 3 * kSecond);
  EXPECT_GE(b.stats().stale_epoch_rejects, 1u);
  for (int i = 0; i < kServers; ++i) {
    const auto stored = raw_get(i, "fence:victim");
    EXPECT_TRUE(!stored.has_value() || *stored != "stale-write")
        << "daemon " << i << " acknowledged a stale-epoch mutation";
  }

  // The daemon-side fencing counter confirms the reject happened there.
  {
    std::uint64_t fleet_rejects = 0;
    for (int i = 0; i < kServers; ++i) {
      MemcacheConnection c(ports_[static_cast<std::size_t>(i)]);
      const auto pairs = c.stats();
      ASSERT_TRUE(pairs.has_value());
      for (const auto& [name, value] : *pairs) {
        if (name == "stale_epoch_rejects") {
          fleet_rejects += std::strtoull(value.c_str(), nullptr, 10);
        }
      }
    }
    EXPECT_GE(fleet_rejects, 1u);
  }

  // The fence taught B the newer epoch; the retried write goes through and
  // this time IS durable on the primary.
  EXPECT_EQ(b.cluster_epoch(), 2u) << "a fence must refresh the view";
  b.put("fence:victim", "fresh-write", 4 * kSecond);
  EXPECT_EQ(raw_get(primary_of("fence:victim"), "fence:victim"),
            std::optional<std::string>("fresh-write"));

  // Fencing is no-retry and no-penalty: the rejected mutation must not
  // have tripped breakers or burned retry attempts.
  EXPECT_EQ(b.stats().retries, 0u);
  EXPECT_EQ(b.stats().breaker_open_skips, 0u);
}

TEST_F(LiveFleet, ColdRestartDropsDeadDigestInsteadOfPhantomProbes) {
  std::uint64_t backend = 0;
  ProteusClient web(fast_options(), [&](std::string_view key) {
    ++backend;
    return backend_of(key);
  });
  for (int i = 0; i < 150; ++i) web.get("page:" + std::to_string(i), 0);
  ASSERT_EQ(backend, 150u);

  // Shrink 3 -> 2: server 2's keys move; its digest is what routes their
  // first post-resize reads to the old location.
  ASSERT_TRUE(web.resize(2, kSecond));
  ASSERT_TRUE(web.in_transition());

  std::vector<std::string> moved;
  for (int i = 0; i < 150; ++i) {
    const std::string key = "page:" + std::to_string(i);
    if (primary_of(key, 3) == 2) moved.push_back(key);
  }
  ASSERT_GE(moved.size(), 20u) << "placement should move ~1/3 of the keys";

  // Pre-crash sanity: the digest is live, so a moved key is served from
  // its old location (Algorithm 2 on-demand migration).
  EXPECT_EQ(web.get(moved[0], 2 * kSecond), backend_of(moved[0]));
  EXPECT_GE(web.stats().old_server_hits, 1u);

  // kill -9 analogue: server 2 cold-restarts. Its memory — and everything
  // the snapshot digest describes — is gone; only the incarnation betrays
  // it.
  kill(2);
  restart(2);

  // The first moved-key read reconnects, sees the new incarnation, and
  // drops the dead digest.
  EXPECT_EQ(web.get(moved[1], 3 * kSecond), backend_of(moved[1]));
  EXPECT_GE(web.stats().incarnation_changes, 1u)
      << "reconnect must detect the cold restart";

  // From here on the dropped digest must stop attracting old-location
  // probes: every further moved key goes straight to the backend with no
  // phantom false-positive probe against the empty restarted server.
  const std::uint64_t fp_before = web.stats().digest_false_positives;
  const std::uint64_t old_hits_before = web.stats().old_server_hits;
  for (std::size_t i = 2; i < moved.size() && i < 22; ++i) {
    EXPECT_EQ(web.get(moved[i], 4 * kSecond), backend_of(moved[i]));
  }
  EXPECT_EQ(web.stats().digest_false_positives, fp_before)
      << "dropped digest must not keep sending probes to the cold server";
  EXPECT_EQ(web.stats().old_server_hits, old_hits_before)
      << "an empty restarted server can hold no old-location hits";
}

TEST_F(LiveFleet, KillMidResizeFleetConvergesWithBoundedTail) {
  std::uint64_t backend = 0;
  ProteusClient web(fast_options(), [&](std::string_view key) {
    ++backend;
    return backend_of(key);
  });
  for (int i = 0; i < 150; ++i) web.get("page:" + std::to_string(i), 0);
  ASSERT_EQ(backend, 150u);

  // Chaos: a surviving-set server dies, THEN the shrink 3 -> 2 runs. Its
  // digest is skipped but the transition (and the epoch bump) completes.
  kill(1);
  EXPECT_FALSE(web.resize(2, kSecond));
  EXPECT_TRUE(web.in_transition());
  EXPECT_GE(web.stats().digest_skips, 1u);
  EXPECT_EQ(web.cluster_epoch(), 1u);

  // The dead server cold-restarts (empty, incarnation changed) and the
  // fleet keeps serving through the whole episode: every key correct, no
  // get blocked meaningfully past its deadline budget.
  restart(1);
  std::int64_t worst_ms = 0;
  for (int i = 0; i < 150; ++i) {
    const std::string key = "page:" + std::to_string(i);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(web.get(key, 2 * kSecond), backend_of(key));
    worst_ms = std::max(worst_ms, elapsed_ms(start));
  }
  EXPECT_LT(worst_ms, 2000) << "a get blocked far past its deadline";

  // Convergence: past the drain window the transition finalizes and a full
  // pass serves everything from the two-server fleet.
  for (int i = 0; i < 150; ++i) {
    const std::string key = "page:" + std::to_string(i);
    EXPECT_EQ(web.get(key, 100 * kSecond), backend_of(key));
  }
  EXPECT_FALSE(web.in_transition());

  // §III K/n balance after recovery: every key is resident on exactly one
  // of the two active servers, in near-equal shares (Algorithm 1's exact
  // balance, within the tolerance hash placement allows on 150 keys).
  const std::size_t items0 = daemons_[0]->item_count();
  const std::size_t items1 = daemons_[1]->item_count();
  EXPECT_GE(items0 + items1, 150u * 95 / 100);
  EXPECT_LE(items0 + items1, 150u + 5);
  EXPECT_GE(items0, 150u * 30 / 100) << "share far below K/n after recovery";
  EXPECT_GE(items1, 150u * 30 / 100) << "share far below K/n after recovery";

  // Bounded tail, measured programmatically over every get of the episode
  // (fill, chaos pass, convergence pass): p99.9 stays within the
  // deadline-derived budget instead of hanging on the crashed server.
  EXPECT_LT(web.get_latency_snapshot().quantile(0.999), 2'000'000.0)
      << "p99.9 end-to-end get latency (us) must stay bounded";
}

}  // namespace
}  // namespace proteus::client
