// Scripted wire faults: the FaultInjector proxy sits between TcpServer and
// the protocol sessions, and every client failure path — timeout, reset,
// garbage bytes, truncated reply — is driven deterministically. Also covers
// the daemon-side hardening: protocol sessions that survive garbage input,
// SIGPIPE-free writes to disconnected peers, and TcpServer's limits
// (connection cap, idle reaping, slow-reader outbox bound).
#include "net/fault_injector.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "cache/binary_protocol.h"
#include "client/memcache_client.h"
#include "common/hash.h"
#include "net/memcache_daemon.h"

namespace proteus::net {
namespace {

std::int64_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Raw blocking socket, for driving the daemon below the client library.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawClient() { close(); }

  bool connected() const { return connected_; }
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  std::string recv_until(std::string_view terminator) {
    std::string out;
    char buf[4096];
    while (out.size() < terminator.size() ||
           out.compare(out.size() - terminator.size(), terminator.size(),
                       terminator) != 0) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  // Reads until EOF or `max` bytes.
  std::string recv_all(std::size_t max = 1 << 20) {
    std::string out;
    char buf[4096];
    while (out.size() < max) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class FaultyDaemon : public ::testing::Test {
 protected:
  void SetUp() override {
    cache::CacheConfig cfg;
    cfg.memory_budget_bytes = 64 << 20;
    daemon_ = std::make_unique<MemcacheDaemon>(cfg, 0);
    ASSERT_TRUE(daemon_->ok());
    daemon_->set_handler_wrapper(
        [this](std::unique_ptr<ConnectionHandler> inner) {
          return injector_.wrap(std::move(inner));
        });
    thread_ = std::thread([this] { daemon_->run(); });
  }

  void TearDown() override {
    daemon_->stop();
    thread_.join();
  }

  client::MemcacheConnection connect(SimTime op_timeout = 200 * kMillisecond) {
    client::MemcacheConnection::Options opt;
    opt.connect_timeout = kSecond;
    opt.op_timeout = op_timeout;
    return client::MemcacheConnection(daemon_->port(), std::move(opt));
  }

  FaultInjector injector_;
  std::unique_ptr<MemcacheDaemon> daemon_;
  std::thread thread_;
};

TEST_F(FaultyDaemon, StallTimesOutWithinDeadlineAndKillsConnection) {
  auto conn = connect(/*op_timeout=*/150 * kMillisecond);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.set("k", "v"));

  injector_.inject(FaultKind::kStall);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(conn.get("k").has_value());
  const auto ms = elapsed_ms(start);
  EXPECT_GE(ms, 100) << "timed out before the deadline";
  EXPECT_LT(ms, 2000) << "blocked far past the deadline";
  EXPECT_EQ(conn.last_error(), NetError::kTimeout);
  EXPECT_FALSE(conn.ok()) << "a timed-out connection must not be reused";
  EXPECT_EQ(injector_.faults_injected(), 1u);
}

TEST_F(FaultyDaemon, GarbageReplyIsProtocolErrorAndKillsConnection) {
  auto conn = connect();
  ASSERT_TRUE(conn.set("k", "v"));
  injector_.inject(FaultKind::kGarbageReply);
  EXPECT_FALSE(conn.get("k").has_value());
  EXPECT_EQ(conn.last_error(), NetError::kProtocol);
  EXPECT_FALSE(conn.ok()) << "a desynced stream must never be read again";
}

TEST_F(FaultyDaemon, GarbageReplyToSetKillsConnection) {
  auto conn = connect();
  injector_.inject(FaultKind::kGarbageReply);
  EXPECT_FALSE(conn.set("k", "v"));
  EXPECT_EQ(conn.last_error(), NetError::kProtocol);
  EXPECT_FALSE(conn.ok());
}

TEST_F(FaultyDaemon, TruncatedReplyIsTransportErrorAndKillsConnection) {
  auto conn = connect();
  ASSERT_TRUE(conn.set("k", std::string(4096, 'x')));
  injector_.inject(FaultKind::kTruncateReply);
  EXPECT_FALSE(conn.get("k").has_value());
  EXPECT_NE(conn.last_error(), NetError::kNone);
  EXPECT_FALSE(conn.ok());
}

TEST_F(FaultyDaemon, DroppedConnectionIsReset) {
  auto conn = connect();
  ASSERT_TRUE(conn.ok());
  injector_.inject(FaultKind::kDropConnection);
  EXPECT_FALSE(conn.get("k").has_value());
  EXPECT_EQ(conn.last_error(), NetError::kReset);
  EXPECT_FALSE(conn.ok());
}

TEST_F(FaultyDaemon, CleanMissIsNotAnError) {
  auto conn = connect();
  EXPECT_FALSE(conn.get("absent").has_value());
  EXPECT_EQ(conn.last_error(), NetError::kNone);
  EXPECT_TRUE(conn.ok());
}

TEST_F(FaultyDaemon, RecoversAfterFaultWindowViaFreshConnection) {
  auto conn = connect();
  ASSERT_TRUE(conn.set("k", "v"));
  injector_.inject(FaultKind::kDropConnection, 1);
  EXPECT_FALSE(conn.get("k").has_value());
  EXPECT_FALSE(conn.ok());
  // Fault budget exhausted: a fresh connection works again.
  auto conn2 = connect();
  const auto v = conn2.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v");
}

// --- daemon-side hardening ---------------------------------------------------

TEST_F(FaultyDaemon, TextSessionSurvivesGarbageRequestBytes) {
  RawClient garbage(daemon_->port());
  ASSERT_TRUE(garbage.connected());
  garbage.send("\x01\xff\x02 utter nonsense\r\n");
  EXPECT_EQ(garbage.recv_until("\r\n"), "ERROR\r\n");
  garbage.close();

  RawClient fresh(daemon_->port());
  ASSERT_TRUE(fresh.connected());
  fresh.send("version\r\n");
  EXPECT_EQ(fresh.recv_until("\r\n"), "VERSION proteus-1.0\r\n");
}

TEST_F(FaultyDaemon, BinarySessionSurvivesTruncatedFrame) {
  RawClient partial(daemon_->port());
  ASSERT_TRUE(partial.connected());
  // Binary magic plus a few header bytes, then vanish mid-frame.
  partial.send(std::string("\x80\x01\x00", 3));
  partial.close();

  RawClient fresh(daemon_->port());
  ASSERT_TRUE(fresh.connected());
  fresh.send("set k 0 0 1\r\nx\r\n");
  EXPECT_EQ(fresh.recv_until("\r\n"), "STORED\r\n");
}

TEST_F(FaultyDaemon, DaemonSurvivesClientDisconnectMidReply) {
  // Store a value far larger than the socket buffers, request it several
  // times pipelined, and disconnect without reading: the daemon's writes
  // hit a dead peer. Without MSG_NOSIGNAL this raises SIGPIPE and kills
  // the process — the daemon still answering afterwards IS the assertion.
  auto conn = connect(/*op_timeout=*/5 * kSecond);
  ASSERT_TRUE(conn.set("big", std::string(4u << 20, 'x')));

  RawClient rude(daemon_->port());
  ASSERT_TRUE(rude.connected());
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += "get big\r\n";
  rude.send(burst);
  rude.close();  // unread replies -> RST against the daemon's sends

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  RawClient fresh(daemon_->port());
  ASSERT_TRUE(fresh.connected());
  fresh.send("version\r\n");
  EXPECT_EQ(fresh.recv_until("\r\n"), "VERSION proteus-1.0\r\n");
}

TEST_F(FaultyDaemon, SlowLorisTricklesButDaemonStaysLive) {
  injector_.inject(FaultKind::kSlowLoris, 1);

  RawClient loris(daemon_->port());
  ASSERT_TRUE(loris.connected());
  // The whole command arrives as one chunk, but only one byte of it
  // reaches the protocol session per network event — the connection and
  // its partial parse state stay pinned.
  loris.send("version\r\n");
  const auto sent = std::chrono::steady_clock::now();
  while (injector_.faults_injected() < 1 && elapsed_ms(sent) < 1000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(injector_.faults_injected(), 1u);

  // Everyone else is unaffected: the mode is sticky per connection and
  // the daemon keeps serving.
  auto conn = connect();
  ASSERT_TRUE(conn.set("k", "v"));
  EXPECT_EQ(conn.get("k").value_or(""), "v");

  // Each further event drains exactly one buffered byte, so the victim's
  // command still completes — crawling, never deadlocked. 40 nudges is
  // ample margin over the 9 events the command needs even if the kernel
  // coalesces some.
  for (int i = 0; i < 40; ++i) {
    loris.send("version\r\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // (more than one nudged command may have completed — assert the first)
  const std::string reply = loris.recv_until("\r\n");
  EXPECT_EQ(reply.rfind("VERSION proteus-1.0\r\n", 0), 0u) << reply;
}

TEST_F(FaultyDaemon, LatencyRampGrowsReplyDelayThenRecovers) {
  auto conn = connect(/*op_timeout=*/kSecond);
  ASSERT_TRUE(conn.set("k", "v"));

  injector_.inject_latency_ramp(30 * kMillisecond, 3);
  for (int n = 1; n <= 3; ++n) {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(conn.get("k").value_or(""), "v");
    EXPECT_GE(elapsed_ms(start), 30 * n - 5)
        << "faulted chunk " << n << " must sleep n * ramp_step";
  }
  // Budget exhausted: latency snaps back.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(conn.get("k").value_or(""), "v");
  EXPECT_LT(elapsed_ms(start), 80);
  EXPECT_EQ(injector_.faults_injected(), 3u);
}

TEST_F(FaultyDaemon, BitFlipCorruptsOnePayloadBitKeepingFramingIntact) {
  auto conn = connect();
  const std::string value = "payload-under-test-0123456789";
  ASSERT_TRUE(conn.set("k", value));

  // One bit rots on the wire AFTER the protocol layer framed the reply:
  // the header, byte count, and terminator all stay valid, so nothing but
  // an end-to-end checksum can tell this reply from a clean one.
  injector_.inject(FaultKind::kBitFlip, 1);
  RawClient raw(daemon_->port());
  ASSERT_TRUE(raw.connected());
  raw.send("get k\r\n");
  const std::string reply = raw.recv_until("END\r\n");
  const std::string header = "VALUE k 0 " + std::to_string(value.size()) +
                             "\r\n";
  ASSERT_EQ(reply.rfind(header, 0), 0u) << reply;
  ASSERT_EQ(reply.substr(header.size() + value.size()), "\r\nEND\r\n");
  const std::string body = reply.substr(header.size(), value.size());
  int differing_bits = 0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    differing_bits += __builtin_popcount(
        static_cast<unsigned char>(body[i] ^ value[i]));
  }
  EXPECT_EQ(differing_bits, 1) << "exactly one payload bit must flip";
  EXPECT_NE(crc32c(body), crc32c(value))
      << "the end-to-end stamp must catch the flip";
  EXPECT_EQ(injector_.faults_injected(), 1u);

  // The stored copy was never touched: the next read is clean.
  EXPECT_EQ(conn.get("k").value_or(""), value);

  // Replies without a flippable payload pass through unchanged.
  injector_.inject(FaultKind::kBitFlip, 1);
  RawClient raw2(daemon_->port());
  ASSERT_TRUE(raw2.connected());
  raw2.send("get missing\r\n");
  EXPECT_EQ(raw2.recv_until("END\r\n"), "END\r\n");
}

// --- TcpServer limits --------------------------------------------------------

// Replies with a fixed blob per received chunk; lets tests inflate the
// outbox without a protocol in the way.
class BlobHandler final : public ConnectionHandler {
 public:
  explicit BlobHandler(std::size_t blob_size) : blob_(blob_size, 'b') {}
  std::string on_data(std::string_view, bool&) override { return blob_; }

 private:
  std::string blob_;
};

TEST(TcpServerLimits, ConnectionCapShedsExcessClients) {
  TcpServer::Limits limits;
  limits.max_connections = 2;
  TcpServer server(
      0, [] { return std::make_unique<BlobHandler>(4); }, false, limits);
  ASSERT_TRUE(server.ok());
  std::thread t([&] { server.run(); });

  RawClient a(server.port()), b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  a.send("x");
  EXPECT_EQ(a.recv_until("bbbb"), "bbbb");
  b.send("x");
  EXPECT_EQ(b.recv_until("bbbb"), "bbbb");

  RawClient c(server.port());
  ASSERT_TRUE(c.connected());  // accepted by the kernel...
  c.send("x");
  // Shed, but told why first: the server best-effort-writes the overload
  // line before closing so the client can tell shed from crash.
  EXPECT_EQ(c.recv_all(), "SERVER_ERROR overloaded\r\n")
      << "over-cap connection must be shed with the overload line";

  server.stop();
  t.join();
  EXPECT_EQ(server.connections_rejected(), 1u);
  EXPECT_EQ(server.connections_accepted(), 2u);
}

TEST(TcpServerLimits, IdleConnectionsAreReaped) {
  TcpServer::Limits limits;
  limits.idle_timeout = 100 * kMillisecond;
  TcpServer server(
      0, [] { return std::make_unique<BlobHandler>(4); }, false, limits);
  ASSERT_TRUE(server.ok());
  std::thread t([&] { server.run(); });

  RawClient idle(server.port());
  ASSERT_TRUE(idle.connected());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(idle.recv_all(), "") << "idle connection should be closed";
  EXPECT_LT(elapsed_ms(start), 5000);

  server.stop();
  t.join();
  EXPECT_EQ(server.idle_reaped(), 1u);
}

TEST(TcpServerLimits, SlowReaderOutboxIsBounded) {
  TcpServer::Limits limits;
  limits.max_outbox_bytes = 64 * 1024;
  // One request inflates the outbox past the bound in a single step.
  TcpServer server(
      0, [] { return std::make_unique<BlobHandler>(128 * 1024); }, false,
      limits);
  ASSERT_TRUE(server.ok());
  std::thread t([&] { server.run(); });

  RawClient slow(server.port());
  ASSERT_TRUE(slow.connected());
  slow.send("x");
  // The connection is dropped rather than buffering without bound; we see
  // EOF after at most the partial write.
  const std::string got = slow.recv_all();
  EXPECT_LT(got.size(), 256u * 1024);

  server.stop();
  t.join();
  EXPECT_EQ(server.slow_reader_drops(), 1u);
}

// Counts this process's open file descriptors via /proc/self/fd.
std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n >= 3 ? n - 3 : 0;  // ".", "..", and the opendir fd itself
}

TEST(TcpServerLimits, FdExhaustionShedsWithOverloadLineAndRecovers) {
  TcpServer server(
      0, [] { return std::make_unique<BlobHandler>(4); }, false,
      TcpServer::Limits{});
  ASSERT_TRUE(server.ok());
  std::thread t([&] { server.run(); });

  // Pre-open the client sockets so the CLIENT side needs no fds later,
  // then clamp RLIMIT_NOFILE to exactly what is open right now: the next
  // accept() inside the server hits EMFILE. The reserved emergency fd is
  // the only headroom left, which is precisely the scenario it exists for.
  int pre = ::socket(AF_INET, SOCK_STREAM, 0);
  int post = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(pre, 0);
  ASSERT_GE(post, 0);
  rlimit old{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old), 0);
  rlimit clamped = old;
  clamped.rlim_cur = static_cast<rlim_t>(open_fd_count());
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &clamped), 0);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(
      ::connect(pre, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Accept-and-close via the released emergency fd: the client learns WHY
  // it was shed (overload line, then EOF) instead of hanging in the
  // backlog until its connect timeout.
  std::string got;
  char buf[64];
  for (;;) {
    const ssize_t n = ::read(pre, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(got, "SERVER_ERROR overloaded\r\n");
  EXPECT_GE(server.fd_exhausted_rejects(), 1u);
  ::close(pre);

  // Budget restored: the very same listener serves new connections (the
  // emergency fd was re-armed, the accept backoff expires).
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old), 0);
  ASSERT_EQ(
      ::connect(post, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::send(post, "x", 1, MSG_NOSIGNAL), 1);
  got.clear();
  const auto start = std::chrono::steady_clock::now();
  while (got != "bbbb" && elapsed_ms(start) < 3000) {
    const ssize_t n = ::read(post, buf, sizeof(buf));
    if (n <= 0) break;
    got.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(got, "bbbb") << "the listener must recover after exhaustion";
  ::close(post);

  server.stop();
  t.join();
}

}  // namespace
}  // namespace proteus::net
