#include "bloom/bloom_filter.h"

#include <gtest/gtest.h>

#include <string>

#include "bloom/config.h"

namespace proteus::bloom {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1 << 16, 4);
  for (int i = 0; i < 2000; ++i) bf.insert("key:" + std::to_string(i));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(bf.maybe_contains("key:" + std::to_string(i))) << i;
  }
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  BloomFilter bf(1024, 4);
  EXPECT_FALSE(bf.maybe_contains("anything"));
  EXPECT_EQ(bf.popcount(), 0u);
}

TEST(BloomFilter, FalsePositiveRateNearAnalytic) {
  // kappa=5000 keys into l=2^16 bits with h=4: Eq. (4) predicts the FP rate.
  constexpr std::size_t kBits = 1 << 16;
  constexpr std::size_t kKeys = 5000;
  BloomFilter bf(kBits, 4);
  for (std::size_t i = 0; i < kKeys; ++i) bf.insert("in:" + std::to_string(i));

  const double predicted = false_positive_rate(kKeys, 4, kBits);
  std::size_t fp = 0;
  constexpr std::size_t kProbes = 100'000;
  for (std::size_t i = 0; i < kProbes; ++i) {
    if (bf.maybe_contains("out:" + std::to_string(i))) ++fp;
  }
  const double measured = static_cast<double>(fp) / kProbes;
  EXPECT_NEAR(measured, predicted, predicted * 0.5 + 1e-4)
      << "measured=" << measured << " predicted=" << predicted;
}

TEST(BloomFilter, SeedChangesBitPattern) {
  BloomFilter a(1024, 4, 1);
  BloomFilter b(1024, 4, 2);
  a.insert("k");
  b.insert("k");
  EXPECT_NE(a.words(), b.words());
}

TEST(BloomFilter, IntegerAndStringOverloadsIndependent) {
  BloomFilter bf(4096, 4);
  bf.insert(std::uint64_t{42});
  EXPECT_TRUE(bf.maybe_contains(std::uint64_t{42}));
  EXPECT_FALSE(bf.maybe_contains(std::uint64_t{43}));
}

TEST(BloomFilter, KeepsLogicalBitCountRoundsStorageUp) {
  // The logical modulus is preserved (it must match a counting filter's
  // counter count); only the backing storage rounds to whole words.
  BloomFilter bf(65, 2);
  EXPECT_EQ(bf.num_bits(), 65u);
  EXPECT_EQ(bf.memory_bytes(), 16u);
  bf.insert("x");
  EXPECT_TRUE(bf.maybe_contains("x"));
}

TEST(BloomFilter, FromWordsRoundTrips) {
  BloomFilter bf(512, 3, 9);
  for (int i = 0; i < 40; ++i) bf.insert("k" + std::to_string(i));
  BloomFilter copy = BloomFilter::from_words(bf.words(), bf.num_bits(),
                                             bf.num_hashes(), bf.seed());
  EXPECT_EQ(bf, copy);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(copy.maybe_contains("k" + std::to_string(i)));
  }
}

TEST(BloomFilter, ClearEmptiesFilter) {
  BloomFilter bf(512, 3);
  bf.insert("x");
  EXPECT_GT(bf.popcount(), 0u);
  bf.clear();
  EXPECT_EQ(bf.popcount(), 0u);
  EXPECT_FALSE(bf.maybe_contains("x"));
}

TEST(BloomFilter, FillRatioGrowsWithInsertions) {
  BloomFilter bf(1 << 14, 4);
  double prev = bf.fill_ratio();
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 500; ++i) {
      bf.insert("b" + std::to_string(batch) + ":" + std::to_string(i));
    }
    const double now = bf.fill_ratio();
    EXPECT_GT(now, prev);
    prev = now;
  }
  EXPECT_LT(prev, 1.0);
}

}  // namespace
}  // namespace proteus::bloom
