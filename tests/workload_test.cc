#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "workload/diurnal_model.h"
#include "workload/trace.h"

namespace proteus::workload {
namespace {

DiurnalConfig test_diurnal() {
  DiurnalConfig cfg;
  cfg.mean_rate = 100.0;
  cfg.amplitude = 1.0 / 3.0;
  cfg.period = 2 * kHour;
  cfg.phase = 30 * kMinute;
  cfg.jitter = 0.0;
  return cfg;
}

TEST(DiurnalModel, PeakToValleyRatioNearTwo) {
  // §II assumption: "the gap between the peak and the nadir load is huge"
  // — the trace shows peak ~ 2x valley; amplitude 1/3 encodes that.
  DiurnalModel model(test_diurnal());
  EXPECT_NEAR(model.peak_rate() / model.valley_rate(), 2.0, 0.01);
}

TEST(DiurnalModel, RateIsPeriodic) {
  DiurnalModel model(test_diurnal());
  EXPECT_NEAR(model.rate_at(10 * kMinute),
              model.rate_at(10 * kMinute + 2 * kHour), 1e-9);
}

TEST(DiurnalModel, JitterIsDeterministicAndBounded) {
  DiurnalConfig cfg = test_diurnal();
  cfg.jitter = 0.05;
  DiurnalModel a(cfg), b(cfg);
  for (SimTime t = 0; t < 4 * kHour; t += 7 * kMinute) {
    EXPECT_DOUBLE_EQ(a.rate_at(t), b.rate_at(t));
    DiurnalConfig clean = cfg;
    clean.jitter = 0;
    DiurnalModel base(clean);
    EXPECT_NEAR(a.rate_at(t), base.rate_at(t), base.rate_at(t) * 0.051);
  }
}

TEST(Trace, GeneratedRateTracksModel) {
  TraceConfig cfg;
  cfg.duration = 4 * kHour;
  cfg.num_pages = 10'000;
  cfg.diurnal = test_diurnal();
  const auto trace = generate_trace(cfg);
  ASSERT_FALSE(trace.empty());

  // Compare per-hour counts against the model's integrated rate.
  const auto counts = requests_per_window(trace, kHour);
  DiurnalModel model(cfg.diurnal);
  for (std::size_t h = 0; h < counts.size(); ++h) {
    double expected = 0;
    for (int m = 0; m < 60; ++m) {
      expected += model.rate_at(static_cast<SimTime>(h) * kHour + m * kMinute) * 60;
    }
    EXPECT_NEAR(static_cast<double>(counts[h]), expected, expected * 0.1)
        << "hour " << h;
  }
}

TEST(Trace, EventsAreTimeOrderedAndInRange) {
  TraceConfig cfg;
  cfg.duration = kHour;
  cfg.diurnal = test_diurnal();
  const auto trace = generate_trace(cfg);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GE(trace[i].time, trace[i - 1].time);
  }
  ASSERT_LT(trace.back().time, kHour);
  ASSERT_GE(trace.front().time, 0);
}

TEST(Trace, KeysAreZipfSkewed) {
  TraceConfig cfg;
  cfg.duration = 2 * kHour;
  cfg.num_pages = 50'000;
  cfg.zipf_alpha = 0.9;
  cfg.diurnal = test_diurnal();
  const auto trace = generate_trace(cfg);

  std::map<std::string, int> counts;
  for (const auto& ev : trace) ++counts[ev.key];
  // The most popular page must be requested far more often than average.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  const double avg = static_cast<double>(trace.size()) / counts.size();
  EXPECT_GT(max_count, 10 * avg);
  // rank-0 page key is the hottest under our sampler.
  EXPECT_EQ(counts.count(page_key(0)), 1u);
}

TEST(Trace, DeterministicForSeed) {
  TraceConfig cfg;
  cfg.duration = 30 * kMinute;
  cfg.diurnal = test_diurnal();
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].time, b[i].time);
    ASSERT_EQ(a[i].key, b[i].key);
  }
  cfg.seed = 999;
  const auto c = generate_trace(cfg);
  // A different seed shifts the arrival process: some early event differs.
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < std::min<std::size_t>(100, c.size()); ++i) {
    differs = a[i].time != c[i].time || a[i].key != c[i].key;
  }
  EXPECT_TRUE(differs);
}

TEST(Trace, FileRoundTrip) {
  TraceConfig cfg;
  cfg.duration = 10 * kMinute;
  cfg.diurnal = test_diurnal();
  const auto trace = generate_trace(cfg);

  std::stringstream ss;
  write_trace(ss, trace);
  const auto loaded = read_trace(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(loaded[i].time, trace[i].time);
    ASSERT_EQ(loaded[i].key, trace[i].key);
  }
}

TEST(Trace, RequestsPerWindowPartitionsTrace) {
  TraceConfig cfg;
  cfg.duration = kHour;
  cfg.diurnal = test_diurnal();
  const auto trace = generate_trace(cfg);
  const auto windows = requests_per_window(trace, 10 * kMinute);
  std::uint64_t total = 0;
  for (auto c : windows) total += c;
  EXPECT_EQ(total, trace.size());
  EXPECT_EQ(windows.size(), 6u);
}

TEST(Trace, ArrivalsArePoisson) {
  // For a (locally) homogeneous Poisson process, per-window counts have
  // variance ~ mean (index of dispersion ~ 1). A jittery or clumped
  // generator would show dispersion far from 1.
  TraceConfig cfg;
  cfg.duration = 2 * kHour;
  cfg.diurnal = test_diurnal();
  cfg.diurnal.amplitude = 0;  // homogeneous for this check
  const auto trace = generate_trace(cfg);
  const auto counts = requests_per_window(trace, 10 * kSecond);
  double mean = 0;
  for (auto c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  double var = 0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(counts.size() - 1);
  EXPECT_NEAR(var / mean, 1.0, 0.15);
}

TEST(PageKey, Format) {
  EXPECT_EQ(page_key(0), "page:0");
  EXPECT_EQ(page_key(12345), "page:12345");
}

}  // namespace
}  // namespace proteus::workload
