#include "hashring/replicated_ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "hashring/proteus_placement.h"

namespace proteus::ring {
namespace {

TEST(ReplicatedRing, SingleReplicaMatchesBarePlacement) {
  auto placement = std::make_shared<ProteusPlacement>(10);
  ReplicatedRing ring(placement, 1);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int n : {1, 5, 10}) {
      const auto servers = ring.servers_for(h, n);
      ASSERT_EQ(servers.size(), 1u);
      ASSERT_EQ(servers[0], placement->server_for(h, n));
      ASSERT_EQ(ring.primary_for(h, n), servers[0]);
    }
  }
}

TEST(ReplicatedRing, ReturnsRequestedReplicaCount) {
  auto placement = std::make_shared<ProteusPlacement>(10);
  ReplicatedRing ring(placement, 3);
  EXPECT_EQ(ring.replicas(), 3);
  EXPECT_EQ(ring.servers_for(12345, 10).size(), 3u);
}

TEST(ReplicatedRing, ReplicaSelectionIsDeterministic) {
  auto placement = std::make_shared<ProteusPlacement>(10);
  ReplicatedRing a(placement, 3);
  ReplicatedRing b(placement, 3);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t h = rng.next_u64();
    EXPECT_EQ(a.servers_for(h, 8), b.servers_for(h, 8));
  }
}

TEST(ReplicatedRing, ConflictRateMatchesEq3) {
  // Measure the fraction of keys whose r replicas land on r distinct
  // servers; §III-E predicts Pnc = prod (n-i)/n.
  auto placement = std::make_shared<ProteusPlacement>(10);
  for (int r : {2, 3}) {
    ReplicatedRing ring(placement, r);
    Rng rng(3);
    int distinct = 0;
    constexpr int kSamples = 100'000;
    for (int i = 0; i < kSamples; ++i) {
      const auto servers = ring.servers_for(rng.next_u64(), 10);
      const std::set<int> unique(servers.begin(), servers.end());
      distinct += unique.size() == servers.size();
    }
    const double expected =
        ProteusPlacement::replica_no_conflict_probability(r, 10);
    EXPECT_NEAR(static_cast<double>(distinct) / kSamples, expected, 0.02)
        << "r=" << r;
  }
}

TEST(ReplicatedRing, EachRingIsIndividuallyBalanced) {
  auto placement = std::make_shared<ProteusPlacement>(10);
  ReplicatedRing ring(placement, 2);
  Rng rng(4);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    for (int s : ring.servers_for(rng.next_u64(), 10)) {
      ++counts[static_cast<std::size_t>(s)];
    }
  }
  const double expected = 2.0 * kSamples / 10;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.05);
}

TEST(ReplicatedRing, ReplicasStayWithinActiveSet) {
  auto placement = std::make_shared<ProteusPlacement>(10);
  ReplicatedRing ring(placement, 3);
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    for (int s : ring.servers_for(rng.next_u64(), 4)) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, 4);
    }
  }
}

}  // namespace
}  // namespace proteus::ring
