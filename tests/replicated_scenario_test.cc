// DES-level replication (§III-E) and crash injection: the full simulated
// cluster with r hash rings and mid-run server failures.
#include <gtest/gtest.h>

#include "cluster/scenario.h"

namespace proteus::cluster {
namespace {

ScenarioConfig base_config(int replicas) {
  ScenarioConfig cfg;
  cfg.kind = ScenarioKind::kProteus;
  cfg.schedule = {4, 4, 4, 4};
  cfg.slot_length = 20 * kSecond;
  cfg.metric_slot = 5 * kSecond;
  cfg.ttl = 8 * kSecond;
  cfg.replicas = replicas;

  cfg.diurnal.mean_rate = 200;
  cfg.diurnal.amplitude = 0;
  cfg.diurnal.jitter = 0;
  cfg.rbe.num_pages = 4000;
  cfg.rbe.pages_per_user = 20;

  cfg.cache.num_servers = 4;
  cfg.cache.per_server.memory_budget_bytes = 16 << 20;  // hold everything
  cfg.web.num_servers = 2;
  cfg.db.num_shards = 2;
  cfg.db.per_shard_concurrency = 1;
  cfg.db.base_service_time = 8 * kMillisecond;
  cfg.db.service_jitter_mean = 8 * kMillisecond;
  return cfg;
}

TEST(ReplicatedScenario, TwoRingsServeWarmFromBothLocations) {
  const ScenarioResult r = run_scenario(base_config(2));
  EXPECT_GT(r.total_requests, 10'000u);
  // Note: the tier-level hit ratio counts the replica chain's probe on a
  // missing ring-0 location as a miss even when ring 1 then hits, so it
  // sits slightly below the single-ring figure.
  EXPECT_GT(r.overall_hit_ratio, 0.8);
  EXPECT_GT(r.db_queries, 0u);
}

TEST(ReplicatedScenario, CrashWithoutReplicationDegradesPermanently) {
  ScenarioConfig cfg = base_config(1);
  cfg.crashes.push_back({40 * kSecond, 2});
  const ScenarioResult crashed = run_scenario(cfg);
  const ScenarioResult clean = run_scenario(base_config(1));
  // Post-crash, ~1/4 of keys can never be cached again (no replica, no
  // replacement server): every such request reaches the database, forever.
  EXPECT_GT(crashed.db_queries, clean.db_queries * 2)
      << "crashed=" << crashed.db_queries << " clean=" << clean.db_queries;
  // And the tail latency of the post-crash half reflects it.
  double crashed_tail = 0, clean_tail = 0;
  int n = 0;
  for (std::size_t s = 0; s < crashed.slots.size(); ++s) {
    if (crashed.slots[s].start >= 50 * kSecond) {
      crashed_tail += crashed.slots[s].p999_ms;
      clean_tail += clean.slots[s].p999_ms;
      ++n;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(crashed_tail, clean_tail * 1.5);
}

TEST(ReplicatedScenario, CrashWithTwoRingsIsAbsorbed) {
  ScenarioConfig with_crash = base_config(2);
  with_crash.crashes.push_back({40 * kSecond, 2});
  const ScenarioResult crashed = run_scenario(with_crash);
  const ScenarioResult clean = run_scenario(base_config(2));

  // The surviving replicas absorb the crash: db traffic grows only by the
  // Eq. (3) conflict residue plus the crashed server's share re-warming.
  EXPECT_GT(crashed.replica_hits, 1000u);
  EXPECT_LT(crashed.db_queries, clean.db_queries * 2);

  // Tail latency does not blow up after the crash.
  double post_peak = 0;
  for (const auto& s : crashed.slots) {
    if (s.start >= 50 * kSecond) post_peak = std::max(post_peak, s.p999_ms);
  }
  double clean_peak = 0;
  for (const auto& s : clean.slots) {
    if (s.start >= 50 * kSecond) clean_peak = std::max(clean_peak, s.p999_ms);
  }
  EXPECT_LT(post_peak, std::max(3 * clean_peak, 100.0))
      << "crash=" << post_peak << "ms clean=" << clean_peak << "ms";
}

TEST(ReplicatedScenario, ResizeComposesWithReplication) {
  ScenarioConfig cfg = base_config(2);
  cfg.schedule = {4, 2, 4, 2};
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_EQ(r.transitions, 3u);
  EXPECT_GT(r.old_server_hits, 100u);  // per-ring Algorithm 2 at work
  EXPECT_GT(r.overall_hit_ratio, 0.8);
}

TEST(ReplicatedScenario, CrashedServerSkippedByLaterResizes) {
  ScenarioConfig cfg = base_config(2);
  cfg.schedule = {4, 2, 4, 4};  // shrink then grow past the crashed server
  cfg.crashes.push_back({30 * kSecond, 3});
  const ScenarioResult r = run_scenario(cfg);
  // Run completes without routing to a dead box; failovers were used.
  EXPECT_GT(r.total_requests, 10'000u);
  EXPECT_GT(r.replica_hits, 0u);
}

TEST(ReplicatedScenario, DeterministicWithReplicasAndCrashes) {
  ScenarioConfig cfg = base_config(2);
  cfg.crashes.push_back({40 * kSecond, 1});
  const ScenarioResult a = run_scenario(cfg);
  const ScenarioResult b = run_scenario(cfg);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.db_queries, b.db_queries);
  EXPECT_EQ(a.replica_hits, b.replica_hits);
}

}  // namespace
}  // namespace proteus::cluster
