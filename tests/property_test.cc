// Parameterized property sweeps over the system's core invariants.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "bloom/config.h"
#include "bloom/counting_bloom_filter.h"
#include "cache/cache_server.h"
#include "common/rng.h"
#include "hashring/proteus_placement.h"
#include "hashring/random_vn_placement.h"

namespace proteus {
namespace {

// --- Placement invariants over cluster sizes -------------------------------

class PlacementProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlacementProperty, VirtualNodeCountMeetsTheorem1) {
  const int n = GetParam();
  ring::ProteusPlacement p(n);
  EXPECT_EQ(p.num_virtual_nodes(),
            static_cast<std::size_t>(n) * (n - 1) / 2 + 1);
}

TEST_P(PlacementProperty, BalanceConditionAtEveryPrefix) {
  const int n = GetParam();
  ring::ProteusPlacement p(n);
  for (int active = 1; active <= n; ++active) {
    for (int s = 0; s < active; ++s) {
      ASSERT_NEAR(p.share(s, active), 1.0 / active, 1e-9)
          << "N=" << n << " active=" << active << " s=" << s;
    }
  }
}

TEST_P(PlacementProperty, MinimalMigrationAtEveryStep) {
  const int n = GetParam();
  ring::ProteusPlacement p(n);
  for (int active = 1; active < n; ++active) {
    ASSERT_NEAR(p.migration_fraction(active, active + 1), 1.0 / (active + 1),
                1e-9);
  }
}

TEST_P(PlacementProperty, LookupNeverReturnsInactiveServer) {
  const int n = GetParam();
  ring::ProteusPlacement p(n);
  Rng rng(static_cast<std::uint64_t>(n));
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int active = 1; active <= n; ++active) {
      const int s = p.server_for(h, active);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, active);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, PlacementProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16,
                                           24, 32, 40, 48, 64));

// --- Consistent-hashing monotonicity across seeds ---------------------------

class RandomRingProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RandomRingProperty, MonotoneUnderShrink) {
  const auto [vnodes, seed] = GetParam();
  ring::RandomVirtualNodePlacement p(10, vnodes, seed);
  Rng rng(seed + 1);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int active = 1; active < 10; ++active) {
      const int at_big = p.server_for(h, active + 1);
      if (at_big != active) {
        ASSERT_EQ(at_big, p.server_for(h, active));
      } else {
        ASSERT_LT(p.server_for(h, active), active);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    VnodeSeeds, RandomRingProperty,
    ::testing::Combine(::testing::Values(1, 3, 5, 50),
                       ::testing::Values(0ull, 42ull, 12345ull)));

// --- Bloom optimizer feasibility over a parameter grid ----------------------

class BloomOptimizerProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned, double>> {};

TEST_P(BloomOptimizerProperty, ResultSatisfiesBothBounds) {
  const auto [kappa, h, bound] = GetParam();
  const bloom::BloomParams p = bloom::optimize(kappa, h, bound, bound);
  EXPECT_LE(bloom::false_positive_rate(kappa, h, p.num_counters), bound);
  EXPECT_LE(bloom::false_negative_bound(kappa, h, p.num_counters,
                                        p.counter_bits),
            bound);
  // Minimality in b: one bit fewer must violate the FN bound.
  if (p.counter_bits > 1) {
    EXPECT_GT(bloom::false_negative_bound(kappa, h, p.num_counters,
                                          p.counter_bits - 1),
              bound);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BloomOptimizerProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1000, 10'000, 250'000),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1e-3, 1e-4, 1e-6)));

// --- Counting-Bloom digest consistency under random workloads ---------------

class DigestProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DigestProperty, DigestNeverFalselyNegativeForResidentKeys) {
  // Random interleaving of set/erase/evict against a small cache: the
  // digest must answer "yes" for every key actually resident.
  const std::uint64_t seed = GetParam();
  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 40'000;
  cfg.per_item_overhead = 0;
  cfg.auto_size_digest = false;
  cfg.digest.num_counters = 1 << 14;
  cfg.digest.counter_bits = 4;
  cfg.digest.num_hashes = 4;
  // Alternate eviction modes across seeds: the digest invariant must hold
  // under segmented LRU's promote/demote churn too.
  cfg.segmented_lru = (seed % 2) == 1;
  cache::CacheServer cache(cfg);
  Rng rng(seed);

  for (int op = 0; op < 5000; ++op) {
    const std::string key = "k" + std::to_string(rng.next_below(800));
    const double action = rng.next_double();
    if (action < 0.6) {
      cache.set(key, "v", op, 100);
    } else if (action < 0.8) {
      cache.erase(key);
    } else {
      cache.get(key, op);
    }
  }
  // Every resident key must be claimed by the digest.
  for (int i = 0; i < 800; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (cache.contains(key, 5000)) {
      ASSERT_TRUE(cache.digest().maybe_contains(key)) << key;
      ASSERT_TRUE(cache.snapshot_digest().maybe_contains(key)) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigestProperty,
                         ::testing::Values(1ull, 7ull, 99ull, 2024ull, 31337ull));

// --- Replication conflict probability over (r, n) ----------------------------

class ReplicationProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReplicationProperty, Eq3IsAProbabilityAndMonotone) {
  const auto [r, n] = GetParam();
  const double p = ring::ProteusPlacement::replica_no_conflict_probability(r, n);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  if (r <= n) {
    // More servers -> fewer conflicts.
    EXPECT_LE(p, ring::ProteusPlacement::replica_no_conflict_probability(
                     r, n + 10));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReplicationProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(1, 2, 10, 100, 1000)));

}  // namespace
}  // namespace proteus
