#include "cache/slab_sizer.h"

#include <gtest/gtest.h>

#include "cache/cache_server.h"

namespace proteus::cache {
namespace {

TEST(SlabSizer, ChunksGrowGeometrically) {
  SlabSizer sizer;
  ASSERT_GE(sizer.num_classes(), 10u);
  for (std::size_t i = 1; i < sizer.num_classes(); ++i) {
    EXPECT_GT(sizer.chunk_size(static_cast<int>(i)),
              sizer.chunk_size(static_cast<int>(i - 1)));
  }
  EXPECT_EQ(sizer.chunk_size(0), 96u);
  EXPECT_EQ(sizer.chunk_size(static_cast<int>(sizer.num_classes()) - 1),
            1u << 20);
}

TEST(SlabSizer, ChunksAreAligned) {
  SlabSizer sizer;
  for (std::size_t i = 0; i < sizer.num_classes(); ++i) {
    EXPECT_EQ(sizer.chunk_size(static_cast<int>(i)) % 8, 0u) << i;
  }
}

TEST(SlabSizer, ClassSelectionIsTight) {
  SlabSizer sizer;
  // An item exactly at a chunk boundary uses that class; one byte more
  // spills to the next.
  const std::size_t chunk = sizer.chunk_size(3);
  EXPECT_EQ(sizer.chunk_size_for(chunk), chunk);
  EXPECT_GT(sizer.chunk_size_for(chunk + 1), chunk);
  EXPECT_EQ(sizer.chunk_size_for(1), 96u);
}

TEST(SlabSizer, OversizedItemsRejected) {
  SlabSizer sizer;
  EXPECT_EQ(sizer.class_for((1 << 20) + 1), -1);
  EXPECT_EQ(sizer.chunk_size_for((1 << 20) + 1), 0u);
  EXPECT_EQ(sizer.class_for(1 << 20),
            static_cast<int>(sizer.num_classes()) - 1);
}

TEST(SlabSizer, FragmentationBounded) {
  SlabSizer sizer;
  // Geometric growth factor 1.25 bounds waste at < 25% + alignment slack.
  for (std::size_t bytes = 96; bytes <= (1 << 18); bytes += 37) {
    EXPECT_LT(sizer.fragmentation_for(bytes), 0.30) << bytes;
  }
}

TEST(SlabSizer, CustomGrowthFactor) {
  SlabSizer coarse(SlabSizer::Options{64, 2.0, 4096});
  EXPECT_EQ(coarse.chunk_size_for(64), 64u);
  EXPECT_EQ(coarse.chunk_size_for(65), 128u);
  EXPECT_EQ(coarse.chunk_size_for(129), 256u);
  EXPECT_EQ(coarse.chunk_size_for(4096), 4096u);
}

TEST(SlabAccounting, CacheChargesChunkSizes) {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 1 << 20;
  cfg.slab_accounting = true;
  cfg.per_item_overhead = 56;
  CacheServer cache(cfg);
  cache.set("k", std::string(10, 'x'), 0);  // 1 + 10 + 56 = 67 -> 96 chunk
  EXPECT_EQ(cache.bytes_used(), 96u);
}

TEST(SlabAccounting, FragmentationReducesEffectiveCapacity) {
  // Items sized just past a chunk boundary waste nearly a whole class step;
  // slab accounting must therefore fit FEWER items than exact accounting.
  CacheConfig exact;
  exact.memory_budget_bytes = 64 << 10;
  exact.per_item_overhead = 0;
  CacheConfig slab = exact;
  slab.slab_accounting = true;

  CacheServer exact_cache(exact);
  CacheServer slab_cache(slab);
  const std::string value(121, 'v');  // 122 bytes with 1-char key -> 152 chunk
  for (int i = 0; i < 1000; ++i) {
    exact_cache.set(std::string(1, 'a' + i % 26) + std::to_string(i), value, 0);
    slab_cache.set(std::string(1, 'a' + i % 26) + std::to_string(i), value, 0);
  }
  EXPECT_LT(slab_cache.item_count(), exact_cache.item_count());
}

TEST(SlabAccounting, OversizedItemRejectedBySlabLimit) {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 16 << 20;
  cfg.slab_accounting = true;
  cfg.slab.max_chunk = 4096;
  CacheServer cache(cfg);
  cache.set("big", std::string(8192, 'x'), 0);
  EXPECT_EQ(cache.item_count(), 0u);
  cache.set("ok", std::string(1024, 'x'), 0);
  EXPECT_EQ(cache.item_count(), 1u);
}

}  // namespace
}  // namespace proteus::cache
