// The metrics flight recorder: the multi-resolution TimeSeriesStore
// (round-trip, tier escalation, downsampler conservation properties across
// tier boundaries and ring wrap-around), the registry sampler's
// counter->rate conversion under a fake clock, the diurnal anomaly
// detector (robust-EWMA scoring, consecutive gating, kAnomaly emission),
// the flight-recorder artifact's well-formedness, and an end-to-end drill
// on a daemon: an induced miss storm raises kAnomaly BEFORE the SLO
// engine pages, and GET /timeseries's backing JSON replays the episode.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "net/memcache_daemon.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tsdb/anomaly.h"
#include "obs/tsdb/flight_recorder.h"
#include "obs/tsdb/sampler.h"
#include "obs/tsdb/tsdb.h"

namespace proteus::obs {
namespace {

// --- TimeSeriesStore ---------------------------------------------------------

TEST(TsPoint, AggregatesAndQuantileEnvelope) {
  TsPoint p;
  p.t = 0;
  for (int i = 1; i <= 10; ++i) p.add(static_cast<double>(i));
  EXPECT_EQ(p.count, 10u);
  EXPECT_DOUBLE_EQ(p.sum, 55.0);
  EXPECT_FLOAT_EQ(p.min, 1.0f);
  EXPECT_FLOAT_EQ(p.max, 10.0f);
  EXPECT_DOUBLE_EQ(p.mean(), 5.5);
  // Decade-sketch quantiles can never leave [min, max].
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double v = p.quantile(q);
    EXPECT_GE(v, p.min);
    EXPECT_LE(v, p.max);
  }
}

TEST(TsPoint, MergeConservesCountSumEnvelope) {
  TsPoint a, b;
  a.add(1.0);
  a.add(100.0);
  b.add(0.5);
  b.add(7.0);
  TsPoint m = a;
  m.merge(b);
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.sum, 108.5);
  EXPECT_FLOAT_EQ(m.min, 0.5f);
  EXPECT_FLOAT_EQ(m.max, 100.0f);
}

TEST(TimeSeriesStore, RawRoundTrip) {
  TimeSeriesStore store;
  for (int s = 0; s < 10; ++s) {
    store.append(s * kSecond, "ops", static_cast<double>(s));
  }
  const auto r = store.query("ops", 0, kSecond);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->step, kSecond);
  ASSERT_EQ(r->points.size(), 10u);
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(r->points[s].t, s * kSecond);
    EXPECT_EQ(r->points[s].count, 1u);
    EXPECT_DOUBLE_EQ(r->points[s].sum, static_cast<double>(s));
  }
}

TEST(TimeSeriesStore, UnknownMetricIsNulloptAnd404Json) {
  TimeSeriesStore store;
  store.append(0, "ops", 1.0);
  EXPECT_FALSE(store.query("nope", 0, kSecond).has_value());
  EXPECT_TRUE(store.query_json("nope", 0, kSecond).empty());
  EXPECT_FALSE(store.query_json("ops", 0, kSecond).empty());
}

TEST(TimeSeriesStore, StepSelectsTierAndSinceEscalates) {
  TsdbConfig cfg;  // raw 1s x 120, mid 10s x 180, coarse 60s x 480
  TimeSeriesStore store(cfg);
  // 20 minutes of 1 Hz appends: the raw tier retains only the last 2 min.
  const int total_s = 20 * 60;
  for (int s = 0; s < total_s; ++s) {
    store.append(s * kSecond, "ops", 1.0);
  }
  // A coarse step answers from the 60 s tier.
  const auto coarse = store.query("ops", 0, kMinute);
  ASSERT_TRUE(coarse.has_value());
  EXPECT_EQ(coarse->step, kMinute);
  // A raw-step query reaching back past raw (and mid) retention escalates
  // to the tier that still remembers the window.
  const auto old_window = store.query("ops", 0, kSecond);
  ASSERT_TRUE(old_window.has_value());
  EXPECT_GT(old_window->step, kSecond);
  // A raw-step query over the recent past stays raw.
  const auto recent =
      store.query("ops", (total_s - 30) * kSecond, kSecond);
  ASSERT_TRUE(recent.has_value());
  EXPECT_EQ(recent->step, kSecond);
}

// Property: downsampling conserves count and sum exactly and preserves the
// min/max envelope, across tier boundaries AND ring wrap-around (raw wraps
// 5x here), with quantiles clamped inside the envelope.
TEST(TimeSeriesStore, DownsamplerConservationProperty) {
  TimeSeriesStore store;
  std::uint64_t lcg = 42;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((lcg >> 33) % 977);  // integers: exact sums
  };
  const int total_s = 600;  // 10 min at 1 Hz
  double expect_sum = 0;
  double expect_min = 1e300;
  double expect_max = -1e300;
  for (int s = 0; s < total_s; ++s) {
    const double v = next();
    expect_sum += v;
    expect_min = std::min(expect_min, v);
    expect_max = std::max(expect_max, v);
    store.append(s * kSecond, "load", v);
  }
  // The coarse tier (480 x 60 s) retains the whole run: conservation must
  // be exact in aggregate.
  const auto coarse = store.query("load", 0, kMinute);
  ASSERT_TRUE(coarse.has_value());
  std::uint64_t count = 0;
  double sum = 0;
  double mn = 1e300;
  double mx = -1e300;
  for (const TsPoint& p : coarse->points) {
    count += p.count;
    sum += p.sum;
    mn = std::min(mn, static_cast<double>(p.min));
    mx = std::max(mx, static_cast<double>(p.max));
    const double q = p.quantile(0.5);
    EXPECT_GE(q, p.min);
    EXPECT_LE(q, p.max);
  }
  EXPECT_EQ(count, static_cast<std::uint64_t>(total_s));
  EXPECT_DOUBLE_EQ(sum, expect_sum);
  EXPECT_DOUBLE_EQ(mn, expect_min);
  EXPECT_DOUBLE_EQ(mx, expect_max);
  // Mid tier (180 x 10 s = 30 min) also retains everything here — and must
  // agree with coarse on every conserved aggregate.
  const auto mid = store.query("load", 0, 10 * kSecond);
  ASSERT_TRUE(mid.has_value());
  std::uint64_t mid_count = 0;
  double mid_sum = 0;
  for (const TsPoint& p : mid->points) {
    mid_count += p.count;
    mid_sum += p.sum;
  }
  EXPECT_EQ(mid_count, count);
  EXPECT_DOUBLE_EQ(mid_sum, sum);
}

TEST(TimeSeriesStore, SeriesCapDropsNewNamesNotAppends) {
  TsdbConfig cfg;
  cfg.max_series = 2;
  TimeSeriesStore store(cfg);
  store.append(0, "a", 1.0);
  store.append(0, "b", 1.0);
  store.append(0, "c", 1.0);  // over the cap: dropped
  store.append(kSecond, "a", 2.0);
  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.dropped_series_appends(), 1u);
  EXPECT_EQ(store.appends(), 3u);
  EXPECT_FALSE(store.query("c", 0, kSecond).has_value());
}

TEST(TimeSeriesStore, JsonSurfacesAndMemoryBound) {
  TimeSeriesStore store;
  for (int s = 0; s < 5; ++s) {
    store.append(s * kSecond, "ops_rate", static_cast<double>(s) + 0.5);
  }
  const std::string idx = store.index_json();
  EXPECT_NE(idx.find("\"ops_rate\""), std::string::npos);
  const std::string body = store.query_json("ops_rate", 0, kSecond);
  EXPECT_NE(body.find("\"metric\":\"ops_rate\""), std::string::npos);
  EXPECT_NE(body.find("\"step_us\":1000000"), std::string::npos);
  EXPECT_NE(body.find("\"points\":["), std::string::npos);
  // One series must stay comfortably inside the "a few MB per server"
  // budget: default geometry is ~28 KB per series.
  EXPECT_LT(store.memory_bytes(), 64u * 1024);
  EXPECT_GT(store.memory_bytes(), 0u);
}

// --- MetricsSampler ----------------------------------------------------------

TEST(MetricsSampler, CounterToRateGaugeAndHistogramSeries) {
  MetricsRegistry registry;
  double counter_val = 0;
  registry.counter_fn("proteus_ops_total", "ops", [&] { return counter_val; });
  Gauge* g = registry.gauge("proteus_items", "items");
  Histogram* h = registry.histogram("proteus_lat_us", "latency");

  TimeSeriesStore store;
  MetricsSampler sampler({}, &registry, &store, nullptr);

  g->set(7.0);
  h->record(100.0);
  sampler.sample_once(0);  // priming pass: no rates yet
  EXPECT_FALSE(store.query("proteus_ops_rate", 0, kSecond).has_value());

  counter_val = 50;
  g->set(9.0);
  for (int i = 0; i < 100; ++i) h->record(100.0);
  sampler.sample_once(10 * kSecond);

  const auto rate = store.query("proteus_ops_rate", 0, kSecond);
  ASSERT_TRUE(rate.has_value());
  ASSERT_FALSE(rate->points.empty());
  EXPECT_DOUBLE_EQ(rate->points.back().sum, 5.0);  // 50 ops / 10 s

  const auto items = store.query("proteus_items", 0, kSecond);
  ASSERT_TRUE(items.has_value());
  EXPECT_DOUBLE_EQ(items->points.back().sum, 9.0);

  for (const char* s : {"proteus_lat_us_p50", "proteus_lat_us_p99",
                        "proteus_lat_us_p999", "proteus_lat_us_rate"}) {
    EXPECT_TRUE(store.query(s, 0, kSecond).has_value()) << s;
  }
  const auto hrate = store.query("proteus_lat_us_rate", 0, kSecond);
  EXPECT_DOUBLE_EQ(hrate->points.back().sum, 10.0);  // 100 records / 10 s
  EXPECT_EQ(sampler.ticks(), 2u);
}

TEST(MetricsSampler, CounterResetRebaselinesInsteadOfNegativeRate) {
  MetricsRegistry registry;
  double counter_val = 1000;
  registry.counter_fn("proteus_ops_total", "ops", [&] { return counter_val; });
  TimeSeriesStore store;
  MetricsSampler sampler({}, &registry, &store, nullptr);
  sampler.sample_once(0);
  counter_val = 5;  // the process restarted: counter went backwards
  sampler.sample_once(10 * kSecond);
  const auto r = store.query("proteus_ops_rate", 0, kSecond);
  // No rate point was emitted for the reset interval...
  EXPECT_FALSE(r.has_value());
  counter_val = 105;
  sampler.sample_once(20 * kSecond);
  // ...and the next interval rates off the NEW baseline.
  const auto r2 = store.query("proteus_ops_rate", 0, kSecond);
  ASSERT_TRUE(r2.has_value());
  EXPECT_DOUBLE_EQ(r2->points.back().sum, 10.0);
}

// --- AnomalyDetector ---------------------------------------------------------

TEST(AnomalyDetector, FlatBaselineThenStormFiresOnceAfterConsecutive) {
  TraceRing ring;
  AnomalyConfig cfg;
  cfg.watch = {"miss_rate"};
  cfg.warmup = 5;
  cfg.consecutive = 3;
  cfg.trace = &ring;
  AnomalyDetector det(cfg);

  SimTime t = 0;
  for (int i = 0; i < 20; ++i, t += kSecond) det.observe(t, "miss_rate", 1.0);
  EXPECT_EQ(det.events(), 0u);
  EXPECT_EQ(det.active(), 0);

  // Storm: 100x the baseline. Fires on the 3rd consecutive anomalous
  // sample, once (min_event_gap rate-limits repeats).
  int fired_at = -1;
  for (int i = 0; i < 6; ++i, t += kSecond) {
    det.observe(t, "miss_rate", 100.0);
    if (fired_at < 0 && det.events() > 0) fired_at = i;
  }
  EXPECT_EQ(det.events(), 1u);
  EXPECT_EQ(fired_at, 2);
  EXPECT_EQ(det.active(), 1);
  EXPECT_GT(det.score("miss_rate"), cfg.threshold);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kAnomaly);
  EXPECT_EQ(events[0].key, "miss_rate");
  EXPECT_EQ(events[0].peer, 1);  // above baseline
  EXPECT_GT(events[0].n, 0u);   // score in milli-units
}

TEST(AnomalyDetector, UnwatchedSeriesAndWarmupAreSilent) {
  AnomalyConfig cfg;
  cfg.watch = {"a"};
  cfg.warmup = 50;
  AnomalyDetector det(cfg);
  SimTime t = 0;
  for (int i = 0; i < 20; ++i, t += kSecond) {
    det.observe(t, "a", i % 2 == 0 ? 0.0 : 1000.0);  // wild but warming up
    det.observe(t, "b", 1e9);                        // not watched
  }
  EXPECT_EQ(det.events(), 0u);
  EXPECT_DOUBLE_EQ(det.score("b"), 0.0);
}

TEST(AnomalyDetector, RecoversAfterStormEnds) {
  AnomalyConfig cfg;
  cfg.watch = {"x"};
  cfg.warmup = 5;
  cfg.consecutive = 2;
  cfg.min_event_gap = kSecond;  // allow a second event quickly
  AnomalyDetector det(cfg);
  SimTime t = 0;
  for (int i = 0; i < 10; ++i, t += kSecond) det.observe(t, "x", 10.0);
  for (int i = 0; i < 4; ++i, t += kSecond) det.observe(t, "x", 500.0);
  EXPECT_EQ(det.active(), 1);
  // Back to normal: the run ends and the series de-asserts.
  for (int i = 0; i < 10; ++i, t += kSecond) det.observe(t, "x", 10.0);
  EXPECT_EQ(det.active(), 0);
}

// --- FlightRecorder ----------------------------------------------------------

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/proteus_flight_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf " + dir_;
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  static std::vector<std::string> read_lines(const std::string& path) {
    std::vector<std::string> lines;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return lines;
    char buf[65536];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) {
      std::string l(buf);
      while (!l.empty() && (l.back() == '\n' || l.back() == '\r')) {
        l.pop_back();
      }
      lines.push_back(std::move(l));
    }
    std::fclose(f);
    return lines;
  }

  std::string dir_;
};

TEST_F(FlightRecorderTest, DumpIsWellFormedJsonl) {
  TimeSeriesStore store;
  for (int s = 0; s < 5; ++s) {
    store.append(s * kSecond, "ops_rate", static_cast<double>(s));
  }
  TraceRing ring;
  emit(&ring, 0, TraceEventKind::kAnomaly, -1, 1, 4200, "ops_rate");
  FlightRecorderConfig cfg;
  cfg.dir = dir_;
  FlightRecorder rec(cfg, &store, &ring,
                     [] { return std::string("{\"span\":1}\n"); });
  ASSERT_TRUE(rec.dump(5 * kSecond, "test", "flight.jsonl"));
  EXPECT_EQ(rec.dumps(), 1u);
  EXPECT_GT(rec.last_dump_bytes(), 0u);

  const auto lines = read_lines(dir_ + "/flight.jsonl");
  ASSERT_GE(lines.size(), 4u);
  // Header first, footer last, and the footer's line count matches — the
  // torn-dump detector crash_smoke.sh uses.
  EXPECT_NE(lines.front().find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"reason\":\"test\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"type\":\"footer\""), std::string::npos);
  const std::string want =
      "\"lines\":" + std::to_string(lines.size() - 1);
  EXPECT_NE(lines.back().find(want), std::string::npos);
  bool saw_point = false;
  bool saw_trace = false;
  bool saw_span = false;
  for (const std::string& l : lines) {
    if (l.find("\"type\":\"point\"") != std::string::npos) saw_point = true;
    if (l.find("\"type\":\"trace\"") != std::string::npos) saw_trace = true;
    if (l.find("\"type\":\"span\"") != std::string::npos) saw_span = true;
    // Every line is one JSON object.
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  EXPECT_TRUE(saw_point);
  EXPECT_TRUE(saw_trace);
  EXPECT_TRUE(saw_span);
}

TEST_F(FlightRecorderTest, CheckpointCadenceGates) {
  TimeSeriesStore store;
  store.append(0, "x", 1.0);
  FlightRecorderConfig cfg;
  cfg.dir = dir_;
  cfg.checkpoint_interval = 10 * kSecond;
  FlightRecorder rec(cfg, &store);
  rec.maybe_checkpoint(0);
  rec.maybe_checkpoint(kSecond);           // gated
  rec.maybe_checkpoint(5 * kSecond);       // gated
  EXPECT_EQ(rec.dumps(), 1u);
  rec.maybe_checkpoint(11 * kSecond);
  EXPECT_EQ(rec.dumps(), 2u);
}

TEST_F(FlightRecorderTest, DisabledWithoutDirAndFailureCounted) {
  TimeSeriesStore store;
  FlightRecorder off({}, &store);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.dump(0, "x", "f.jsonl"));
  EXPECT_EQ(off.dumps(), 0u);

  FlightRecorderConfig cfg;
  cfg.dir = dir_ + "/does/not/exist";
  FlightRecorder bad(cfg, &store);
  EXPECT_FALSE(bad.dump(0, "x", "f.jsonl"));
  EXPECT_EQ(bad.dump_failures(), 1u);
}

// --- end-to-end drill on the daemon ------------------------------------------

// An induced miss storm must raise kAnomaly BEFORE the SLO engine pages
// (the anomaly detector reacts in `consecutive` samples; burn-rate SLOs
// need a fast window of bad minutes), and the /timeseries backing JSON
// must replay the episode afterwards.
TEST(DaemonDrill, MissStormRaisesAnomalyBeforeSloPages) {
  SimTime now = 0;
  const net::ClockFn clock = [&now] { return now; };

  net::AuditOptions audit;
  audit.enabled = true;
  audit.slo.hit_ratio_target = 0.9;
  audit.slo.windows.fast_window = 60 * kSecond;
  audit.slo.windows.slow_window = 600 * kSecond;

  net::TsdbOptions tsdb;
  tsdb.enabled = true;
  tsdb.anomaly.watch = {"proteus_cache_get_misses_rate"};
  tsdb.anomaly.warmup = 5;
  tsdb.anomaly.consecutive = 3;

  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 1 << 20;
  net::MemcacheDaemon daemon(cfg, /*port=*/0, clock, /*threads=*/1, {}, {},
                             audit, tsdb);
  ASSERT_TRUE(daemon.ok());
  ASSERT_NE(daemon.tsdb(), nullptr);
  ASSERT_NE(daemon.sampler(), nullptr);
  // Deterministic drill: drive the sampler by hand on the fake clock.
  daemon.sampler()->stop();

  daemon.cache().set("hot", "v", now);
  // Healthy phase: all hits, one sample per simulated second.
  for (int s = 0; s < 15; ++s) {
    now += kSecond;
    for (int i = 0; i < 50; ++i) daemon.cache().get("hot", now);
    daemon.sampler()->sample_once(now);
  }
  ASSERT_NE(daemon.anomaly_detector(), nullptr);
  EXPECT_EQ(daemon.anomaly_detector()->events(), 0u);

  // Miss storm. Track WHEN the anomaly fires and what /health said then.
  int anomaly_after = -1;
  for (int s = 0; s < 10; ++s) {
    now += kSecond;
    for (int i = 0; i < 50; ++i) daemon.cache().get("cold", now);
    daemon.sampler()->sample_once(now);
    if (anomaly_after < 0 && daemon.anomaly_detector()->events() > 0) {
      anomaly_after = s + 1;
      // The drill's point: the anomaly pre-warns while the SLO burn-rate
      // engine (60 s fast window) has not paged yet.
      EXPECT_EQ(daemon.health().first, 200);
    }
  }
  ASSERT_GT(anomaly_after, 0);
  EXPECT_LE(anomaly_after, 5);

  // The kAnomaly event is on the trace ring with the series name.
  bool saw = false;
  for (const TraceEvent& e : daemon.trace().snapshot()) {
    if (e.kind == TraceEventKind::kAnomaly) {
      saw = true;
      EXPECT_EQ(e.key, "proteus_cache_get_misses_rate");
      EXPECT_EQ(e.peer, 1);
    }
  }
  EXPECT_TRUE(saw);

  // /timeseries replays the episode: the miss-rate series holds both the
  // quiet phase (rate 0) and the storm (rate 50/s).
  const std::string body =
      daemon.timeseries_json("proteus_cache_get_misses_rate", 0, kSecond);
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("\"metric\":\"proteus_cache_get_misses_rate\""),
            std::string::npos);
  const auto r = daemon.tsdb()->query("proteus_cache_get_misses_rate", 0,
                                      kSecond);
  ASSERT_TRUE(r.has_value());
  double peak = 0;
  double low = 1e300;
  for (const TsPoint& p : r->points) {
    peak = std::max(peak, p.mean());
    low = std::min(low, p.mean());
  }
  EXPECT_NEAR(peak, 50.0, 1.0);
  EXPECT_NEAR(low, 0.0, 1e-9);

  // The anomaly counters ride the ordinary registry surfaces.
  const std::string metrics = daemon.metrics_text();
  EXPECT_NE(metrics.find("proteus_anomaly_events_total"), std::string::npos);
  EXPECT_NE(metrics.find("proteus_tsdb_series"), std::string::npos);
  // index + unknown-metric 404 semantics through the daemon facade.
  EXPECT_FALSE(daemon.timeseries_json({}, 0, 0).empty());
  EXPECT_TRUE(daemon.timeseries_json("no_such_series", 0, 0).empty());
}

// The ?name= prefix filter on the registry snapshot (the /metrics?name=P
// backing): matching families only, unmatched prefix -> empty set.
TEST(MetricsPrefix, SnapshotPrefixFilters) {
  MetricsRegistry registry;
  registry.counter("proteus_cache_gets_total", "g");
  registry.counter("proteus_net_accepts_total", "a");
  const auto cache_only = registry.snapshot_prefix("proteus_cache_");
  ASSERT_EQ(cache_only.size(), 1u);
  EXPECT_EQ(cache_only[0].name, "proteus_cache_gets_total");
  EXPECT_TRUE(registry.snapshot_prefix("nope_").empty());
  EXPECT_EQ(registry.snapshot_prefix("").size(), 2u);
}

}  // namespace
}  // namespace proteus::obs
