#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/queueing_server.h"

namespace proteus::sim {
namespace {

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, EqualTimestampsFireFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(30, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.schedule_after(10, step);
  };
  sim.schedule_at(0, step);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(QueueingServer, ServesWithinConcurrency) {
  Simulation sim;
  QueueingServer server(sim, "s", 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    server.submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  // Two slots: jobs finish at 100, 100, 200, 200.
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], 100);
  EXPECT_EQ(completions[1], 100);
  EXPECT_EQ(completions[2], 200);
  EXPECT_EQ(completions[3], 200);
  EXPECT_EQ(server.completions(), 4u);
  EXPECT_EQ(server.max_queue_depth(), 2u);
}

TEST(QueueingServer, FifoQueueDiscipline) {
  Simulation sim;
  QueueingServer server(sim, "s", 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    server.submit(10, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(QueueingServer, TracksWaitTime) {
  Simulation sim;
  QueueingServer server(sim, "s", 1);
  server.submit(100, [] {});
  server.submit(100, [] {});  // waits 100
  server.submit(100, [] {});  // waits 200
  sim.run();
  EXPECT_EQ(server.total_wait_time(), 300);
  EXPECT_EQ(server.total_busy_time(), 300);
}

TEST(QueueingServer, UtilizationReflectsBusyFraction) {
  Simulation sim;
  QueueingServer server(sim, "s", 1);
  server.submit(500, [] {});
  sim.schedule_at(1000, [] {});  // extend the clock
  sim.run();
  EXPECT_NEAR(server.utilization(), 0.5, 1e-9);
}

TEST(QueueingServer, OverloadBuildsQueue) {
  Simulation sim;
  QueueingServer server(sim, "s", 1);
  // Offered load 2x capacity: arrivals every 50, service 100.
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(i * 50, [&] { server.submit(100, [] {}); });
  }
  sim.run();
  EXPECT_GE(server.max_queue_depth(), 8u);
}

}  // namespace
}  // namespace proteus::sim
