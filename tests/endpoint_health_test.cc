// Unit tests for the gray-failure primitives in core/endpoint_health.h:
// the decorrelated-jitter retry scheduler, the hedge token budget, and the
// phi-accrual EndpointHealth state machine (warmup, latency accrual,
// fail-stop fast path, probation re-admission, flap damping).
#include "core/endpoint_health.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace proteus::core {
namespace {

TEST(DecorrelatedJitter, DrawsStayInRangeAndWander) {
  const SimTime base = 100 * kMillisecond;
  const SimTime cap = 5 * kSecond;
  DecorrelatedJitter jitter(base, cap);
  Rng rng(42);

  SimTime prev = base;
  std::set<SimTime> distinct;
  SimTime lo = cap, hi = 0;
  for (int i = 0; i < 200; ++i) {
    const SimTime d = jitter.next(rng);
    ASSERT_GE(d, base) << "delay below base at draw " << i;
    ASSERT_LE(d, cap) << "delay above cap at draw " << i;
    ASSERT_LE(d, std::max(base, 3 * prev))
        << "decorrelated bound violated at draw " << i;
    prev = d;
    distinct.insert(d);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // Spread, not clustering: the 200 draws must cover a wide slice of
  // [base, cap] with almost no repeats — a degenerate generator (fixed or
  // 2^k-stepped backoff) collapses both measures.
  EXPECT_GT(distinct.size(), 150u);
  EXPECT_GT(hi - lo, (cap - base) / 4);
}

TEST(DecorrelatedJitter, DifferentSeedsGiveDifferentSchedules) {
  // The anti-thundering-herd property: clients that quarantined the same
  // endpoint in the same instant must not re-probe in lockstep.
  DecorrelatedJitter a(100 * kMillisecond, 5 * kSecond);
  DecorrelatedJitter b(100 * kMillisecond, 5 * kSecond);
  Rng rng_a(1), rng_b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.next(rng_a) != b.next(rng_b)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(HedgeBudget, BoundsHedgesToTheConfiguredFraction) {
  HedgeBudget budget(/*rate=*/0.05, /*burst=*/8.0);
  std::uint64_t fired = 0;
  for (int i = 0; i < 10000; ++i) {
    budget.on_request();
    if (budget.try_acquire()) ++fired;
  }
  // <= 5% of offered load plus the small initial allowance.
  EXPECT_LE(fired, 500u + 8u);
  EXPECT_GE(fired, 400u);  // and the budget is actually usable
}

TEST(HedgeBudget, BurstCapsIdleAccumulation) {
  HedgeBudget budget(/*rate=*/0.05, /*burst=*/2.0);
  for (int i = 0; i < 10000; ++i) budget.on_request();
  // A long quiet stretch must not bank unlimited hedges.
  int burst = 0;
  while (budget.try_acquire()) ++burst;
  EXPECT_LE(burst, 2);
}

EndpointHealth::Policy sensitive_policy() {
  EndpointHealth::Policy p;
  p.min_deviation_usec = 100.0;  // unit tests drive latencies directly
  return p;
}

TEST(EndpointHealth, WarmupSuppressesLatencyAccrual) {
  EndpointHealth h(sensitive_policy());
  Rng rng(7);
  // Absurd outliers during warmup must not move the state machine: the
  // baseline does not exist yet.
  for (int i = 0; i < 7; ++i) {
    h.record_success(i * kSecond, (i % 2 == 0) ? 100 : 1000000, rng);
    EXPECT_EQ(h.state(), EndpointHealth::State::kHealthy);
  }
  EXPECT_FALSE(h.warmed_up());
  h.record_success(8 * kSecond, 100, rng);
  EXPECT_TRUE(h.warmed_up());
}

TEST(EndpointHealth, SustainedLatencyOutliersQuarantine) {
  EndpointHealth h(sensitive_policy());
  Rng rng(7);
  SimTime now = 0;
  for (int i = 0; i < 20; ++i) {
    h.record_success(now += kMillisecond, 1000, rng);  // 1 ms baseline
  }
  ASSERT_EQ(h.state(), EndpointHealth::State::kHealthy);
  EXPECT_EQ(h.suspicion(), 0.0);

  // The endpoint turns slow-but-alive: every response still succeeds but
  // sits far off baseline. Suspicion must accrue through suspect into
  // quarantine — the gray failure a binary breaker never trips on.
  bool suspected = false;
  int rounds = 0;
  while (h.state() != EndpointHealth::State::kQuarantined && rounds < 50) {
    h.record_success(now += kMillisecond, 200000, rng);  // 200x baseline
    suspected |= h.state() == EndpointHealth::State::kSuspect;
    ++rounds;
  }
  EXPECT_EQ(h.state(), EndpointHealth::State::kQuarantined);
  EXPECT_TRUE(suspected) << "must pass through suspect on the way down";
  EXPECT_LE(rounds, 10) << "sustained 200x latency should accrue quickly";
  EXPECT_EQ(h.quarantine_enters(), 1u);

  // Quarantined: no admission until the probe dwell elapses.
  EXPECT_FALSE(h.allow(now));
  EXPECT_GT(h.probe_at(), now);
}

TEST(EndpointHealth, ConsecutiveErrorsQuarantineEvenCold) {
  EndpointHealth h(sensitive_policy());
  Rng rng(7);
  // The fail-stop fast path needs no latency baseline.
  h.record_failure(0, rng);
  h.record_failure(0, rng);
  EXPECT_NE(h.state(), EndpointHealth::State::kQuarantined);
  h.record_failure(0, rng);
  EXPECT_EQ(h.state(), EndpointHealth::State::kQuarantined);
}

TEST(EndpointHealth, ProbationReadmitsAfterCleanResponses) {
  EndpointHealth h(sensitive_policy());
  Rng rng(7);
  for (int i = 0; i < 3; ++i) h.record_failure(kSecond, rng);
  ASSERT_EQ(h.state(), EndpointHealth::State::kQuarantined);

  // First admission at the probe time opens probation.
  const SimTime probe = h.probe_at();
  EXPECT_FALSE(h.allow(probe - 1));
  EXPECT_TRUE(h.allow(probe));
  EXPECT_EQ(h.state(), EndpointHealth::State::kProbation);

  // probation_successes clean responses re-admit...
  h.record_success(probe + 1, 1000, rng);
  h.record_success(probe + 2, 1000, rng);
  EXPECT_EQ(h.state(), EndpointHealth::State::kProbation);
  h.record_success(probe + 3, 1000, rng);
  EXPECT_EQ(h.state(), EndpointHealth::State::kHealthy);
  EXPECT_EQ(h.suspicion(), 0.0);
  EXPECT_EQ(h.quarantine_exits(), 1u);
}

TEST(EndpointHealth, ProbationErrorRequarantines) {
  EndpointHealth h(sensitive_policy());
  Rng rng(7);
  for (int i = 0; i < 3; ++i) h.record_failure(kSecond, rng);
  const SimTime probe = h.probe_at();
  ASSERT_TRUE(h.allow(probe));
  ASSERT_EQ(h.state(), EndpointHealth::State::kProbation);
  // One error during probation is disqualifying — straight back inside.
  h.record_failure(probe + 1, rng);
  EXPECT_EQ(h.state(), EndpointHealth::State::kQuarantined);
  EXPECT_EQ(h.quarantine_enters(), 2u);
  EXPECT_GT(h.probe_at(), probe);
}

TEST(EndpointHealth, FlapDampingGrowsDwellsAndQuietStretchResets) {
  EndpointHealth::Policy p = sensitive_policy();
  p.quarantine_base = 100 * kMillisecond;
  p.quarantine_cap = 10 * kSecond;
  p.flap_window = 30 * kSecond;
  EndpointHealth h(p);
  Rng rng(7);

  // Flap repeatedly: quarantine, pass probation, immediately fail again.
  // Dwells are drawn from a jitter schedule whose range only grows while
  // the endpoint keeps bouncing; track the max observed.
  SimTime now = 0;
  SimTime max_dwell = 0;
  for (int flap = 0; flap < 8; ++flap) {
    for (int i = 0; i < 3; ++i) h.record_failure(now, rng);
    ASSERT_EQ(h.state(), EndpointHealth::State::kQuarantined);
    max_dwell = std::max(max_dwell, h.probe_at() - now);
    now = h.probe_at();
    ASSERT_TRUE(h.allow(now));
    for (int i = 0; i < 3; ++i) h.record_success(now, 1000, rng);
    ASSERT_EQ(h.state(), EndpointHealth::State::kHealthy);
  }
  EXPECT_GT(max_dwell, 3 * p.quarantine_base)
      << "consecutive flaps must grow the re-probe dwell";

  // A long quiet stretch resets the schedule: the next quarantine's dwell
  // is drawn from the base range again.
  now += p.flap_window + kSecond;
  for (int i = 0; i < 3; ++i) h.record_failure(now, rng);
  ASSERT_EQ(h.state(), EndpointHealth::State::kQuarantined);
  EXPECT_LE(h.probe_at() - now, 3 * p.quarantine_base)
      << "a sustained healthy stretch must reset flap damping";
}

TEST(EndpointHealth, HedgeDelayTracksTheBaseline) {
  EndpointHealth::Policy p = sensitive_policy();
  EndpointHealth h(p);
  Rng rng(7);
  // Before warmup the cap disables hedging in practice.
  EXPECT_EQ(h.hedge_delay(), p.hedge_delay_cap);

  SimTime now = 0;
  for (int i = 0; i < 50; ++i) h.record_success(now += kMillisecond, 20000, rng);
  // mean ~20ms, small deviation: the trigger sits a little above the mean
  // and far below the cap.
  EXPECT_GT(h.hedge_delay(), 20000);
  EXPECT_LT(h.hedge_delay(), p.hedge_delay_cap);

  // A slower baseline moves the trigger out with it (adaptive, per
  // endpoint — a uniformly slow server is not hedge-worthy).
  for (int i = 0; i < 200; ++i) {
    h.record_success(now += kMillisecond, 60000, rng);
  }
  EXPECT_GT(h.hedge_delay(), 60000);
}

TEST(EndpointHealth, SuspectHysteresisRecoversWithoutQuarantine) {
  EndpointHealth h(sensitive_policy());
  Rng rng(7);
  SimTime now = 0;
  for (int i = 0; i < 20; ++i) h.record_success(now += kMillisecond, 1000, rng);

  // A short burst of moderate outliers: suspicion rises into suspect but
  // not quarantine...
  int rounds = 0;
  while (h.state() != EndpointHealth::State::kSuspect && rounds < 10) {
    h.record_success(now += kMillisecond, 4000, rng);
    ++rounds;
  }
  ASSERT_EQ(h.state(), EndpointHealth::State::kSuspect);
  ASSERT_EQ(h.quarantine_enters(), 0u);
  // ...and a run of on-baseline responses decays it back to healthy.
  for (int i = 0; i < 50 && h.state() != EndpointHealth::State::kHealthy;
       ++i) {
    h.record_success(now += kMillisecond, 1000, rng);
  }
  EXPECT_EQ(h.state(), EndpointHealth::State::kHealthy);
  EXPECT_EQ(h.quarantine_enters(), 0u);
}

TEST(EndpointHealth, ForceQuarantineAndOperatorProbation) {
  EndpointHealth h(sensitive_policy());
  Rng rng(7);
  h.force_quarantine(kSecond, rng);
  EXPECT_EQ(h.state(), EndpointHealth::State::kQuarantined);
  EXPECT_FALSE(h.allow(kSecond));
  // Operator re-admission skips the dwell but still demands proof.
  h.begin_probation();
  EXPECT_EQ(h.state(), EndpointHealth::State::kProbation);
  EXPECT_TRUE(h.allow(kSecond));
  h.record_failure(kSecond, rng);
  EXPECT_EQ(h.state(), EndpointHealth::State::kQuarantined);
}

}  // namespace
}  // namespace proteus::core
