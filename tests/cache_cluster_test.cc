#include "cluster/cache_cluster.h"

#include <gtest/gtest.h>

#include <memory>

#include "hashring/proteus_placement.h"

namespace proteus::cluster {
namespace {

struct Fixture {
  sim::Simulation sim;
  CacheTier tier;
  std::shared_ptr<Router> router;
  CacheCluster cluster;

  explicit Fixture(bool smooth, int initial = 10, SimTime ttl = 10 * kSecond)
      : tier(sim, tier_config()),
        router(std::make_shared<Router>(
            std::make_shared<ring::ProteusPlacement>(10), initial)),
        cluster(sim, tier, router, CacheClusterConfig{smooth, ttl}) {}

  static CacheTierConfig tier_config() {
    CacheTierConfig cfg;
    cfg.num_servers = 10;
    cfg.per_server.memory_budget_bytes = 1 << 20;
    cfg.per_server.auto_size_digest = false;
    cfg.per_server.digest.num_counters = 1 << 12;
    cfg.per_server.digest.counter_bits = 4;
    cfg.per_server.digest.num_hashes = 4;
    return cfg;
  }
};

TEST(CacheCluster, InitialPowerStateMatchesActiveCount) {
  Fixture f(/*smooth=*/true, /*initial=*/4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(f.tier.server(i).power_state(), cache::PowerState::kActive) << i;
  }
  for (int i = 4; i < 10; ++i) {
    EXPECT_EQ(f.tier.server(i).power_state(), cache::PowerState::kOff) << i;
  }
  EXPECT_EQ(f.cluster.powered_servers(), 4);
}

TEST(CacheCluster, BrutalShrinkPowersOffImmediately) {
  Fixture f(/*smooth=*/false);
  f.cluster.resize(6);
  EXPECT_EQ(f.router->active(), 6);
  EXPECT_FALSE(f.router->in_transition());
  for (int i = 6; i < 10; ++i) {
    EXPECT_EQ(f.tier.server(i).power_state(), cache::PowerState::kOff);
  }
  EXPECT_EQ(f.cluster.powered_servers(), 6);
}

TEST(CacheCluster, BrutalShrinkLosesHotData) {
  Fixture f(/*smooth=*/false);
  f.tier.server(9).set("k", "v", 0);
  f.cluster.resize(9);
  f.tier.server(9).power_on();
  EXPECT_FALSE(f.tier.server(9).contains("k", 0));
}

TEST(CacheCluster, SmoothShrinkDrainsThenPowersOff) {
  Fixture f(/*smooth=*/true, 10, /*ttl=*/10 * kSecond);
  f.tier.server(8).set("hot", "v", 0);
  f.cluster.resize(8);

  // During the drain window the leaving servers still serve.
  EXPECT_EQ(f.router->active(), 8);
  EXPECT_TRUE(f.router->in_transition());
  EXPECT_EQ(f.tier.server(8).power_state(), cache::PowerState::kDraining);
  EXPECT_EQ(f.tier.server(9).power_state(), cache::PowerState::kDraining);
  EXPECT_TRUE(f.tier.server(8).contains("hot", kSecond));
  EXPECT_EQ(f.cluster.powered_servers(), 10);

  // After TTL the timer finalizes: drained servers power off.
  f.sim.run_until(11 * kSecond);
  EXPECT_EQ(f.tier.server(8).power_state(), cache::PowerState::kOff);
  EXPECT_EQ(f.tier.server(9).power_state(), cache::PowerState::kOff);
  EXPECT_FALSE(f.router->in_transition());
  EXPECT_EQ(f.cluster.powered_servers(), 8);
}

TEST(CacheCluster, SmoothGrowPowersOnAndExposesOldMapping) {
  Fixture f(/*smooth=*/true, /*initial=*/4);
  f.cluster.resize(7);
  EXPECT_EQ(f.router->active(), 7);
  EXPECT_EQ(f.router->old_active(), 4);
  EXPECT_TRUE(f.router->in_transition());
  for (int i = 0; i < 7; ++i) {
    EXPECT_NE(f.tier.server(i).power_state(), cache::PowerState::kOff) << i;
  }
  f.sim.run_until(11 * kSecond);
  EXPECT_FALSE(f.router->in_transition());
  EXPECT_EQ(f.cluster.powered_servers(), 7);  // nobody powered off on grow
}

TEST(CacheCluster, ResizeToSameSizeIsNoop) {
  Fixture f(/*smooth=*/true);
  f.cluster.resize(10);
  EXPECT_FALSE(f.router->in_transition());
  EXPECT_EQ(f.cluster.powered_servers(), 10);
}

TEST(CacheCluster, OverlappingResizeFinalizesPrevious) {
  Fixture f(/*smooth=*/true, 10, /*ttl=*/10 * kSecond);
  f.cluster.resize(8);  // drains 8, 9
  // Second resize before TTL: the pending drain finalizes first.
  f.sim.run_until(2 * kSecond);
  f.cluster.resize(6);  // drains 6, 7
  EXPECT_EQ(f.tier.server(8).power_state(), cache::PowerState::kOff);
  EXPECT_EQ(f.tier.server(9).power_state(), cache::PowerState::kOff);
  EXPECT_EQ(f.tier.server(6).power_state(), cache::PowerState::kDraining);
  EXPECT_EQ(f.router->old_active(), 8);

  f.sim.run_until(20 * kSecond);
  EXPECT_EQ(f.cluster.powered_servers(), 6);
  EXPECT_FALSE(f.router->in_transition());
}

TEST(CacheCluster, StaleFinalizeTimerDoesNotKillNewTransition) {
  Fixture f(/*smooth=*/true, 10, /*ttl=*/10 * kSecond);
  f.cluster.resize(8);           // drains 8, 9; finalize timer armed for t=10s
  f.sim.run_until(2 * kSecond);
  f.cluster.resize(7);           // pre-empts; drains server 7, new timer t=12s
  f.sim.run_until(10 * kSecond + 500 * kMillisecond);
  // The stale t=10s timer must NOT have finalized the second transition.
  EXPECT_TRUE(f.router->in_transition());
  EXPECT_EQ(f.tier.server(7).power_state(), cache::PowerState::kDraining);
  f.sim.run_until(13 * kSecond);
  EXPECT_FALSE(f.router->in_transition());
  EXPECT_EQ(f.tier.server(7).power_state(), cache::PowerState::kOff);
}

TEST(CacheCluster, GrowAfterShrinkReactivatesServers) {
  Fixture f(/*smooth=*/true, 10, /*ttl=*/kSecond);
  f.cluster.resize(5);
  f.sim.run_until(2 * kSecond);
  EXPECT_EQ(f.cluster.powered_servers(), 5);
  f.cluster.resize(10);
  EXPECT_EQ(f.cluster.powered_servers(), 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(f.tier.server(i).power_state(), cache::PowerState::kOff) << i;
  }
}

}  // namespace
}  // namespace proteus::cluster
