#include "cluster/web_tier.h"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cache_cluster.h"
#include "hashring/proteus_placement.h"

namespace proteus::cluster {
namespace {

struct Rig {
  sim::Simulation sim;
  db::Database db;
  CacheTier tier;
  std::shared_ptr<Router> router;
  CacheCluster cluster;
  WebTier web;

  explicit Rig(bool smooth = true, int initial = 10)
      : db(sim, db_config()),
        tier(sim, tier_config()),
        router(std::make_shared<Router>(
            std::make_shared<ring::ProteusPlacement>(10), initial)),
        cluster(sim, tier, router, CacheClusterConfig{smooth, 10 * kSecond}),
        web(sim, WebTierConfig{}, router, tier, db) {}

  static db::DbConfig db_config() {
    db::DbConfig cfg;
    cfg.base_service_time = 5 * kMillisecond;
    cfg.service_jitter_mean = 0;
    cfg.per_shard_concurrency = 4;
    return cfg;
  }

  static CacheTierConfig tier_config() {
    CacheTierConfig cfg;
    cfg.per_server.memory_budget_bytes = 8 << 20;
    return cfg;
  }

  // Issues a request and steps the simulation just until it completes, so
  // pending timers (e.g. a transition's TTL finalize) stay in the future.
  SimTime request(const std::string& key) {
    bool done = false;
    SimTime done_at = -1;
    const SimTime start = sim.now();
    web.handle(key, [&] {
      done = true;
      done_at = sim.now();
    });
    for (int guard = 0; !done && guard < 100'000; ++guard) {
      sim.run_until(sim.now() + kMillisecond);
    }
    EXPECT_TRUE(done) << "request never completed";
    return done_at - start;
  }
};

TEST(WebTier, ColdMissGoesToDatabaseThenCaches) {
  Rig rig;
  const SimTime cold = rig.request("page:1");
  EXPECT_EQ(rig.web.stats().db_fetches, 1u);
  EXPECT_GE(cold, 5 * kMillisecond);  // paid the DB seek

  const SimTime warm = rig.request("page:1");
  EXPECT_EQ(rig.web.stats().db_fetches, 1u);  // no second DB trip
  EXPECT_EQ(rig.web.stats().new_server_hits, 1u);
  EXPECT_LT(warm, 5 * kMillisecond);  // cache-speed
}

TEST(WebTier, CachedValueMatchesDatabase) {
  Rig rig;
  rig.request("page:7");
  const auto d = rig.router->decide("page:7");
  const auto v = rig.tier.server(d.primary).get("page:7", rig.sim.now());
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, rig.db.value_for("page:7"));
}

TEST(WebTier, RequestsSpreadAcrossWebServers) {
  Rig rig;
  for (int i = 0; i < 40; ++i) rig.request("page:" + std::to_string(i));
  for (int i = 0; i < rig.web.num_servers(); ++i) {
    EXPECT_EQ(rig.web.server_queue(i).arrivals(), 4u) << i;
  }
}

TEST(WebTier, SmoothShrinkServesHotDataFromOldServer) {
  Rig rig(/*smooth=*/true);
  // Warm 200 pages at full size.
  for (int i = 0; i < 200; ++i) rig.request("page:" + std::to_string(i));
  const auto db_before = rig.web.stats().db_fetches;
  EXPECT_EQ(db_before, 200u);

  rig.cluster.resize(5);

  // Re-request everything inside the drain window: remapped keys must be
  // served via the old server (Algorithm 2 lines 6-8), not the database.
  for (int i = 0; i < 200; ++i) rig.request("page:" + std::to_string(i));
  EXPECT_EQ(rig.web.stats().db_fetches, db_before);
  EXPECT_GT(rig.web.stats().old_server_hits, 50u);  // ~half the keys remapped
}

TEST(WebTier, MigratedKeyHitsNewServerOnSecondAccess) {
  Rig rig(/*smooth=*/true);
  for (int i = 0; i < 100; ++i) rig.request("page:" + std::to_string(i));
  rig.cluster.resize(5);
  for (int i = 0; i < 100; ++i) rig.request("page:" + std::to_string(i));
  const auto old_hits_first_pass = rig.web.stats().old_server_hits;
  // Second pass: everything already migrated -> primary hits only
  // (§IV-A property 1: only the FIRST request reaches the old server).
  for (int i = 0; i < 100; ++i) rig.request("page:" + std::to_string(i));
  EXPECT_EQ(rig.web.stats().old_server_hits, old_hits_first_pass);
}

TEST(WebTier, BrutalShrinkCausesMissStorm) {
  Rig rig(/*smooth=*/false);
  for (int i = 0; i < 200; ++i) rig.request("page:" + std::to_string(i));
  const auto db_before = rig.web.stats().db_fetches;
  rig.cluster.resize(5);
  for (int i = 0; i < 200; ++i) rig.request("page:" + std::to_string(i));
  // Modulo remap: most keys land on servers that never held them.
  EXPECT_GT(rig.web.stats().db_fetches, db_before + 50);
}

TEST(WebTier, AfterDrainWindowMigratedDataStillServed) {
  Rig rig(/*smooth=*/true);
  for (int i = 0; i < 100; ++i) rig.request("page:" + std::to_string(i));
  rig.cluster.resize(5);
  for (int i = 0; i < 100; ++i) rig.request("page:" + std::to_string(i));
  const auto db_before = rig.web.stats().db_fetches;

  rig.sim.run_until(rig.sim.now() + 15 * kSecond);  // drain ends, servers off

  for (int i = 0; i < 100; ++i) rig.request("page:" + std::to_string(i));
  EXPECT_EQ(rig.web.stats().db_fetches, db_before)
      << "hot data was lost despite on-demand migration";
}

TEST(WebTier, ScaleUpWarmsNewServersFromOldOnes) {
  Rig rig(/*smooth=*/true, /*initial=*/4);
  for (int i = 0; i < 200; ++i) rig.request("page:" + std::to_string(i));
  const auto db_before = rig.web.stats().db_fetches;

  rig.cluster.resize(8);
  for (int i = 0; i < 200; ++i) rig.request("page:" + std::to_string(i));
  EXPECT_EQ(rig.web.stats().db_fetches, db_before)
      << "scale-up should pull hot data from the old smaller mapping";
  EXPECT_GT(rig.web.stats().old_server_hits, 0u);
}

TEST(WebTier, DogPileCoalescingCollapsesConcurrentMisses) {
  Rig rig;
  // Rebuild the web tier with coalescing on.
  WebTierConfig cfg;
  cfg.coalesce_db_fetches = true;
  WebTier web(rig.sim, cfg, rig.router, rig.tier, rig.db);

  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    web.handle("page:hot", [&] { ++completed; });
  }
  rig.sim.run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(web.stats().db_fetches, 1u) << "stampede was not coalesced";
  EXPECT_EQ(web.stats().coalesced_fetches, 19u);
  // The value is cached afterwards.
  bool hit = false;
  web.handle("page:hot", [&] { hit = true; });
  rig.sim.run();
  EXPECT_TRUE(hit);
  EXPECT_EQ(web.stats().db_fetches, 1u);
}

TEST(WebTier, WithoutCoalescingEveryConcurrentMissHitsDb) {
  Rig rig;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    rig.web.handle("page:hot", [&] { ++completed; });
  }
  rig.sim.run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(rig.web.stats().db_fetches, 20u);
  EXPECT_EQ(rig.web.stats().coalesced_fetches, 0u);
}

TEST(WebTier, CoalescingDistinctKeysDoNotInterfere) {
  Rig rig;
  WebTierConfig cfg;
  cfg.coalesce_db_fetches = true;
  WebTier web(rig.sim, cfg, rig.router, rig.tier, rig.db);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    web.handle("page:" + std::to_string(i), [&] { ++completed; });
  }
  rig.sim.run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(web.stats().db_fetches, 10u);  // all distinct: nothing coalesces
}

TEST(WebTier, CrashMidTransitionDropsDigestInsteadOfPhantomFallback) {
  Rig rig(/*smooth=*/true);
  for (int i = 0; i < 200; ++i) rig.request("page:" + std::to_string(i));
  rig.cluster.resize(5);

  // Pick a remapped key whose digest still steers misses to its old server.
  std::string victim_key;
  int victim_server = -1;
  for (int i = 0; i < 200 && victim_server < 0; ++i) {
    const std::string key = "page:" + std::to_string(i);
    const auto d = rig.router->decide(key);
    if (d.fallback >= 0) {
      victim_key = key;
      victim_server = d.fallback;
    }
  }
  ASSERT_GE(victim_server, 0) << "no key remapped with a hot digest claim";

  // The crash loses the old server's memory; its broadcast digest now makes
  // phantom "hot" claims. mark_failed must retract it from every router.
  rig.cluster.mark_failed(victim_server);
  EXPECT_EQ(rig.router->decide(victim_key).fallback, -1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(rig.router->decide("page:" + std::to_string(i)).fallback,
              victim_server);
  }

  // The key is still servable: the miss falls through to the database and
  // repopulates the new location instead of probing the dead server.
  const auto old_hits_before = rig.web.stats().old_server_hits;
  rig.request(victim_key);
  EXPECT_EQ(rig.web.stats().old_server_hits, old_hits_before);
  rig.request(victim_key);
  EXPECT_EQ(rig.tier.server(rig.router->decide(victim_key).primary)
                .get(victim_key, rig.sim.now())
                .value_or(""),
            rig.db.value_for(victim_key));
}

TEST(WebTier, StatsAccounting) {
  Rig rig;
  for (int i = 0; i < 50; ++i) rig.request("page:" + std::to_string(i));
  const auto& s = rig.web.stats();
  EXPECT_EQ(s.requests, 50u);
  EXPECT_EQ(s.db_fetches, 50u);
  EXPECT_EQ(s.new_server_hits, 0u);
  for (int i = 0; i < 50; ++i) rig.request("page:" + std::to_string(i));
  EXPECT_EQ(rig.web.stats().new_server_hits, 50u);
  EXPECT_NEAR(rig.web.stats().cache_hit_ratio(), 0.5, 1e-9);
}

}  // namespace
}  // namespace proteus::cluster
