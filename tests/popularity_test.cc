#include "workload/popularity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace proteus::workload {
namespace {

std::vector<TraceEvent> zipf_trace(std::size_t n_requests, std::size_t pages,
                                   double alpha, std::uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(pages, alpha);
  std::vector<TraceEvent> trace;
  trace.reserve(n_requests);
  for (std::size_t i = 0; i < n_requests; ++i) {
    trace.push_back(TraceEvent{static_cast<SimTime>(i) * kMillisecond,
                               page_key(zipf(rng))});
  }
  return trace;
}

TEST(Popularity, RecoversZipfExponent) {
  for (double alpha : {0.7, 0.9, 1.1}) {
    const auto trace = zipf_trace(400'000, 50'000, alpha, 1);
    const PopularityStats stats = analyze_popularity(trace);
    EXPECT_NEAR(stats.zipf_alpha, alpha, 0.1) << "alpha=" << alpha;
  }
}

TEST(Popularity, UniformTraceHasNearZeroAlpha) {
  Rng rng(2);
  std::vector<TraceEvent> trace;
  for (int i = 0; i < 100'000; ++i) {
    trace.push_back(TraceEvent{static_cast<SimTime>(i),
                               page_key(rng.next_below(5'000))});
  }
  const PopularityStats stats = analyze_popularity(trace);
  EXPECT_LT(stats.zipf_alpha, 0.15);
  // Uniform: the top decile by SAMPLED count still edges over 10% (order
  // statistics of Poisson counts) but stays far below any skewed trace.
  EXPECT_LT(stats.top_10pct_share, 0.2);
  EXPECT_GT(stats.top_10pct_share, 0.09);
}

TEST(Popularity, ConcentrationMetricsAreOrdered) {
  const auto trace = zipf_trace(200'000, 20'000, 0.9, 3);
  const PopularityStats stats = analyze_popularity(trace);
  EXPECT_GT(stats.top_1pct_share, 0.1);
  EXPECT_GT(stats.top_10pct_share, stats.top_1pct_share);
  EXPECT_LE(stats.top_10pct_share, 1.0);
  EXPECT_GT(stats.hot_set_80, 0u);
  EXPECT_LT(stats.hot_set_80, stats.distinct_keys);
  EXPECT_EQ(stats.requests, 200'000u);
}

TEST(Popularity, EmptyTrace) {
  const PopularityStats stats = analyze_popularity({});
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.distinct_keys, 0u);
}

TEST(Popularity, SingleKeyTrace) {
  std::vector<TraceEvent> trace(100, TraceEvent{0, "page:0"});
  const PopularityStats stats = analyze_popularity(trace);
  EXPECT_EQ(stats.distinct_keys, 1u);
  EXPECT_EQ(stats.hot_set_80, 1u);
  EXPECT_DOUBLE_EQ(stats.top_1pct_share, 1.0);
}

TEST(WorkingSet, CountsDistinctPerWindow) {
  std::vector<TraceEvent> trace;
  // Window 0: a, a, b.  Window 1: (empty).  Window 2: c.
  trace.push_back({0, "a"});
  trace.push_back({kSecond / 2, "a"});
  trace.push_back({kSecond - 1, "b"});
  trace.push_back({2 * kSecond + 1, "c"});
  const auto ws = working_set_sizes(trace, kSecond);
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[0], 2u);
  EXPECT_EQ(ws[1], 0u);
  EXPECT_EQ(ws[2], 1u);
}

TEST(WorkingSet, TracksChurn) {
  // Same keys every window vs fresh keys every window.
  std::vector<TraceEvent> stable, churning;
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 100; ++i) {
      const SimTime t = w * kSecond + i * kMillisecond;
      stable.push_back({t, page_key(static_cast<std::size_t>(i))});
      churning.push_back(
          {t, page_key(static_cast<std::size_t>(w * 100 + i))});
    }
  }
  const auto ws_stable = working_set_sizes(stable, kSecond);
  const auto ws_churn = working_set_sizes(churning, kSecond);
  for (std::size_t w = 0; w < ws_stable.size(); ++w) {
    EXPECT_EQ(ws_stable[w], 100u);
    EXPECT_EQ(ws_churn[w], 100u);
  }
  // Per-window sizes match, but the union differs — captured by
  // analyze_popularity's distinct count.
  EXPECT_EQ(analyze_popularity(stable).distinct_keys, 100u);
  EXPECT_EQ(analyze_popularity(churning).distinct_keys, 1000u);
}

}  // namespace
}  // namespace proteus::workload
