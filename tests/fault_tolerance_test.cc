// End-to-end failure drills for the live wire path: daemons killed under a
// running ProteusClient. The client must never block past its deadlines,
// never die of SIGPIPE, keep serving every key (backend or §III-E replica),
// and complete provisioning transitions with dead servers in the fleet —
// the live analogue of what bench/ext_crash_latency simulates.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/memcache_client.h"
#include "common/hash.h"
#include "hashring/replicated_ring.h"
#include "net/fault_injector.h"
#include "net/memcache_daemon.h"

namespace proteus::client {
namespace {

std::int64_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

class LiveFleet : public ::testing::Test {
 protected:
  static constexpr int kServers = 3;

  void SetUp() override {
    daemons_.resize(kServers);
    threads_.resize(kServers);
    ports_.resize(kServers);
    for (int i = 0; i < kServers; ++i) start(i, /*port=*/0);
  }

  void TearDown() override {
    for (int i = 0; i < kServers; ++i) kill(i);
  }

  void start(int i, std::uint16_t port) {
    cache::CacheConfig cfg;
    cfg.memory_budget_bytes = 8 << 20;
    auto& d = daemons_[static_cast<std::size_t>(i)];
    d = std::make_unique<net::MemcacheDaemon>(cfg, port);
    ASSERT_TRUE(d->ok());
    ports_[static_cast<std::size_t>(i)] = d->port();
    threads_[static_cast<std::size_t>(i)] =
        std::thread([daemon = d.get()] { daemon->run(); });
  }

  void kill(int i) {
    auto& d = daemons_[static_cast<std::size_t>(i)];
    if (!d) return;
    d->stop();
    threads_[static_cast<std::size_t>(i)].join();
    d.reset();
  }

  void restart(int i) { start(i, ports_[static_cast<std::size_t>(i)]); }

  ProteusClient::Options fast_options() {
    ProteusClient::Options opt;
    opt.endpoints = ports_;
    opt.ttl = 60 * kSecond;
    opt.connect_timeout = 200 * kMillisecond;
    opt.op_timeout = 200 * kMillisecond;
    opt.max_attempts = 2;
    opt.breaker.failure_threshold = 3;
    opt.breaker.backoff.base_delay = 500 * kMillisecond;
    opt.breaker.backoff.max_delay = 5 * kSecond;
    // Exact backend-count assertions below must not wobble with wall-clock
    // scheduling jitter: keep the health machine error-driven only (the
    // latency-accrual paths are covered by gray_failure_test).
    opt.health.min_deviation_usec = 1e9;
    return opt;
  }

  // The ring-0 primary of `key` with all kServers active.
  static int primary_of(std::string_view key) {
    const ring::ProteusPlacement placement(kServers);
    return placement.server_for(hash_bytes(key), kServers);
  }

  std::vector<std::unique_ptr<net::MemcacheDaemon>> daemons_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::thread> threads_;
};

TEST_F(LiveFleet, DeadServerDegradesToBackendWithinDeadline) {
  std::uint64_t backend = 0;
  ProteusClient web(fast_options(), [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });
  for (int i = 0; i < 60; ++i) web.get("page:" + std::to_string(i), 0);
  ASSERT_EQ(backend, 60u);

  kill(2);

  // Every key still resolves correctly; no get may block meaningfully past
  // its per-server budget of max_attempts * (connect + op timeout).
  std::int64_t worst_ms = 0;
  for (int i = 0; i < 60; ++i) {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(web.get("page:" + std::to_string(i), kSecond),
              "db:page:" + std::to_string(i));
    worst_ms = std::max(worst_ms, elapsed_ms(start));
  }
  EXPECT_LT(worst_ms, 2000) << "a get blocked far past its deadline";
  EXPECT_GT(web.stats().degraded_misses, 0u)
      << "keys on the dead server must degrade to backend fetches";
  EXPECT_GT(web.stats().resets + web.stats().timeouts, 0u);
  EXPECT_GT(web.stats().reconnects, 0u);
}

TEST_F(LiveFleet, ResizeCompletesWithDeadServerAndServesEveryKey) {
  std::uint64_t backend = 0;
  ProteusClient web(fast_options(), [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });
  for (int i = 0; i < 120; ++i) web.get("page:" + std::to_string(i), 0);
  ASSERT_EQ(backend, 120u);

  // Server 2 dies; the shrink 3 -> 2 must still complete. Its digest is
  // skipped (recorded absent), not a reason to wedge provisioning.
  kill(2);
  EXPECT_FALSE(web.resize(2, kSecond)) << "skipped digest must be reported";
  EXPECT_TRUE(web.in_transition());
  EXPECT_GE(web.stats().digest_skips, 1u);

  // Every key is served with the correct value. Algorithm 1 moves ONLY the
  // removed server's keys, so the survivors' keys all stay warm; just the
  // dead server's share (about a third) refills from the backend.
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(web.get("page:" + std::to_string(i), 2 * kSecond),
              "db:page:" + std::to_string(i));
  }
  EXPECT_GT(backend, 120u) << "the dead server's keys must refill";
  EXPECT_LT(backend, 120u + 100u) << "survivors' keys must stay warm";

  // Past the TTL the transition finalizes and the fleet of two serves
  // everything from cache.
  const std::uint64_t before = backend;
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(web.get("page:" + std::to_string(i), 100 * kSecond),
              "db:page:" + std::to_string(i));
  }
  EXPECT_FALSE(web.in_transition());
  EXPECT_EQ(backend, before) << "post-transition reads must all hit";
}

TEST_F(LiveFleet, DaemonKilledMidTransitionStillServesEveryKey) {
  std::uint64_t backend = 0;
  ProteusClient web(fast_options(), [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });
  for (int i = 0; i < 120; ++i) web.get("page:" + std::to_string(i), 0);

  // Healthy shrink: digests all fetched...
  ASSERT_TRUE(web.resize(2, kSecond));
  ASSERT_TRUE(web.in_transition());
  // ...then the draining server dies mid-transition. Its digest still
  // claims its keys are hot; the fallback consult must fail fast and fall
  // through to the backend instead of wedging the transition.
  kill(2);
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(web.get("page:" + std::to_string(i), 2 * kSecond),
              "db:page:" + std::to_string(i));
  }
  EXPECT_TRUE(web.in_transition());
  // The drain window still finalizes on schedule.
  web.tick(100 * kSecond);
  EXPECT_FALSE(web.in_transition());
}

TEST_F(LiveFleet, BreakerOpensOnRepeatedFailureAndRecoversOnRestart) {
  std::uint64_t backend = 0;
  ProteusClient web(fast_options(), [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });
  for (int i = 0; i < 30; ++i) web.get("page:" + std::to_string(i), 0);

  kill(1);
  // Repeated ops against the dead endpoint trip the breaker...
  for (int i = 0; i < 30; ++i) web.get("page:" + std::to_string(i), kSecond);
  EXPECT_EQ(web.breaker_state(1), core::CircuitBreaker::State::kOpen);
  const std::uint64_t reconnects_when_open = web.stats().reconnects;
  // ...and while open, the endpoint is skipped without touching the
  // network (same `now`, so the probe window has not arrived).
  for (int i = 0; i < 30; ++i) web.get("page:" + std::to_string(i), kSecond);
  EXPECT_GT(web.stats().breaker_open_skips, 0u);
  EXPECT_EQ(web.stats().reconnects, reconnects_when_open);

  // The daemon comes back on the same port; past the backoff window the
  // half-open probe reconnects and the breaker closes.
  restart(1);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(web.get("page:" + std::to_string(i), 30 * kSecond),
              "db:page:" + std::to_string(i));
  }
  EXPECT_EQ(web.breaker_state(1), core::CircuitBreaker::State::kClosed);
  EXPECT_GT(web.stats().reconnects, reconnects_when_open);
}

TEST_F(LiveFleet, ReplicaFailoverServesWithoutBackend) {
  auto opt = fast_options();
  opt.replicas = 2;
  std::uint64_t backend = 0;
  ProteusClient web(opt, [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });

  // Find a key whose two ring locations land on different servers.
  const ring::ProteusPlacement placement(kServers);
  std::string key;
  int primary = -1;
  for (int i = 0; i < 200; ++i) {
    const std::string candidate = "page:" + std::to_string(i);
    const std::uint64_t h = hash_bytes(candidate);
    const int p0 = placement.server_for(ring::replica_ring_hash(h, 0),
                                        kServers);
    const int p1 = placement.server_for(ring::replica_ring_hash(h, 1),
                                        kServers);
    if (p0 != p1) {
      key = candidate;
      primary = p0;
      break;
    }
  }
  ASSERT_FALSE(key.empty());

  // Warm: the fill writes BOTH replica locations (§III-E write-all).
  EXPECT_EQ(web.get(key, 0), "db:" + key);
  ASSERT_EQ(backend, 1u);

  kill(primary);
  // The primary is gone, but the replica ring still has the data: served
  // warm, zero extra backend load.
  EXPECT_EQ(web.get(key, kSecond), "db:" + key);
  EXPECT_EQ(backend, 1u) << "replica failover must not touch the backend";
  EXPECT_GE(web.stats().failover_hits, 1u);
}

TEST_F(LiveFleet, StalledServerIsBoundedByDeadline) {
  net::FaultInjector injector;
  // Attach the injector to server 0 (fresh connections only, so do it
  // before the client first connects).
  daemons_[0]->set_handler_wrapper(
      [&](std::unique_ptr<net::ConnectionHandler> inner) {
        return injector.wrap(std::move(inner));
      });

  auto opt = fast_options();
  opt.op_timeout = 100 * kMillisecond;
  opt.connect_timeout = 100 * kMillisecond;
  std::uint64_t backend = 0;
  ProteusClient web(opt, [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });

  // A key routed to server 0.
  std::string key;
  for (int i = 0; i < 100; ++i) {
    const std::string candidate = "page:" + std::to_string(i);
    if (primary_of(candidate) == 0) {
      key = candidate;
      break;
    }
  }
  ASSERT_FALSE(key.empty());
  EXPECT_EQ(web.get(key, 0), "db:" + key);

  // From now on server 0 swallows every request: gets must time out and
  // degrade, never hang.
  injector.inject_forever(net::FaultKind::kStall);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(web.get(key, kSecond), "db:" + key);
  EXPECT_LT(elapsed_ms(start), 2000);
  EXPECT_GE(web.stats().timeouts, 1u);
  EXPECT_GE(web.stats().degraded_misses, 1u);
}

// --- MemcacheConnection host/endpoint handling -------------------------------

TEST(MemcacheConnectionHost, UnresolvableHostFailsFastAsRefused) {
  MemcacheConnection::Options opt;
  opt.host = "not-a-host";
  MemcacheConnection conn(11211, std::move(opt));
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.last_error(), net::NetError::kRefused);
}

TEST(MemcacheConnectionHost, LocalhostAliasAndClosedPortRefused) {
  // A port nothing listens on: connect must fail fast with kRefused, not
  // hang.
  MemcacheConnection::Options opt;
  opt.host = "localhost";
  opt.connect_timeout = kSecond;
  const auto start = std::chrono::steady_clock::now();
  MemcacheConnection conn(1, std::move(opt));  // port 1: nothing there
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.last_error(), net::NetError::kRefused);
  EXPECT_LT(elapsed_ms(start), 2000);
}

}  // namespace
}  // namespace proteus::client
