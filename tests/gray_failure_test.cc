// Acceptance drills for the gray-failure defense (ISSUE PR 9): a live
// fleet where one daemon degrades without dying. The phi-accrual health
// machine must quarantine it, hedged reads must cap the latency tail while
// staying inside their extra-load budget, corrupt payloads must never
// reach a caller, and a recovered endpoint must re-admit through probation
// probes.
//
// Wall-clock latency assertions are floored generously (kNoiseFloor): this
// suite runs under parallel ctest on small CI boxes where scheduler
// hiccups of tens of milliseconds are routine. The injected faults sit an
// order of magnitude above the floor, so the A/B contrast survives noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/memcache_client.h"
#include "common/hash.h"
#include "hashring/replicated_ring.h"
#include "net/fault_injector.h"
#include "net/memcache_daemon.h"
#include "obs/span.h"

namespace proteus::client {
namespace {

constexpr SimTime kNoiseFloor = 50 * kMillisecond;

SimTime mono_usec() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SimTime quantile(std::vector<SimTime> v, double q) {
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

class GrayFleet : public ::testing::Test {
 protected:
  static constexpr int kServers = 2;

  void SetUp() override {
    daemons_.resize(kServers);
    threads_.resize(kServers);
    ports_.resize(kServers);
    injectors_ = std::vector<net::FaultInjector>(kServers);
    for (int i = 0; i < kServers; ++i) {
      cache::CacheConfig cfg;
      cfg.memory_budget_bytes = 8 << 20;
      auto& d = daemons_[static_cast<std::size_t>(i)];
      d = std::make_unique<net::MemcacheDaemon>(cfg, 0);
      ASSERT_TRUE(d->ok());
      d->set_handler_wrapper(
          [this, i](std::unique_ptr<net::ConnectionHandler> inner) {
            return injectors_[static_cast<std::size_t>(i)].wrap(
                std::move(inner));
          });
      ports_[static_cast<std::size_t>(i)] = d->port();
      threads_[static_cast<std::size_t>(i)] =
          std::thread([daemon = d.get()] { daemon->run(); });
    }
  }

  void TearDown() override {
    for (int i = 0; i < kServers; ++i) {
      auto& d = daemons_[static_cast<std::size_t>(i)];
      if (!d) continue;
      d->stop();
      threads_[static_cast<std::size_t>(i)].join();
      d.reset();
    }
  }

  ProteusClient::Options base_options() {
    ProteusClient::Options opt;
    opt.endpoints = ports_;
    opt.ttl = 600 * kSecond;
    opt.connect_timeout = 500 * kMillisecond;
    opt.op_timeout = 2 * kSecond;
    opt.max_attempts = 2;
    return opt;
  }

  // Keys whose ring-0 primary is server 0 (the daemon we sabotage).
  static std::vector<std::string> keys_on_server0(int want) {
    const ring::ProteusPlacement placement(kServers);
    std::vector<std::string> keys;
    for (int i = 0; keys.size() < static_cast<std::size_t>(want); ++i) {
      std::string key = "gray:" + std::to_string(i);
      if (placement.server_for(hash_bytes(key), kServers) == 0) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  }

  std::vector<std::unique_ptr<net::MemcacheDaemon>> daemons_;
  std::vector<net::FaultInjector> injectors_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::thread> threads_;
};

// --- hedged reads vs a latency ramp ------------------------------------------

TEST_F(GrayFleet, LatencyRampHedgingCutsTheTailWithinBudget) {
  const std::vector<std::string> keys = keys_on_server0(40);

  // Defense ON: hedging (default 5% budget) + phi accrual. The hedge
  // budget absorbs the first outliers; the first un-hedged request rides
  // the ramp into its op deadline and that hard timeout quarantines
  // (failure_threshold=1 — under a fault this sustained, one strike is
  // right). A huge dwell keeps probation probes out of the measurement.
  ProteusClient::Options on_opt = base_options();
  on_opt.replicas = 2;  // every key also lives on server 1
  on_opt.breaker.failure_threshold = 1;
  on_opt.breaker.backoff.base_delay = 300 * kSecond;
  on_opt.breaker.backoff.max_delay = 600 * kSecond;
  ProteusClient web_on(on_opt, [](std::string_view key) {
    return "v:" + std::string(key);
  });

  // Defense OFF: the pre-gray-failure client — no hedging, latency-blind
  // health (deviation floor parks phi at zero), errors only.
  ProteusClient::Options off_opt = base_options();
  off_opt.replicas = 2;
  off_opt.hedging = false;
  off_opt.health.min_deviation_usec = 1e9;
  off_opt.breaker.failure_threshold = 1000;
  ProteusClient web_off(off_opt, [](std::string_view key) {
    return "v:" + std::string(key);
  });

  for (const std::string& key : keys) web_on.put(key, "v:" + key, 0);

  // Steady phase: warm connections, the phi baseline, and the hedge-delay
  // estimate; collect the healthy-fleet latency distribution.
  std::vector<SimTime> steady;
  for (int round = 0; round < 8; ++round) {
    for (const std::string& key : keys) {
      const SimTime t0 = mono_usec();
      ASSERT_EQ(web_on.get(key, kSecond), "v:" + key);
      steady.push_back(mono_usec() - t0);
    }
  }
  for (const std::string& key : keys) {
    ASSERT_EQ(web_off.get(key, kSecond), "v:" + key);
  }
  const SimTime steady_p999 = quantile(steady, 0.999);
  const SimTime bound = 3 * std::max(steady_p999, kNoiseFloor);

  // Ramp phase, defense OFF: server 0 slides into saturation (each faulted
  // request sleeps 60ms more than the last). The naive client rides every
  // request out — its tail IS the ramp.
  injectors_[0].inject_latency_ramp(60 * kMillisecond, 8);
  std::vector<SimTime> off_lat;
  for (int i = 0; i < 8; ++i) {
    const std::string& key = keys[static_cast<std::size_t>(i) % keys.size()];
    const SimTime t0 = mono_usec();
    ASSERT_EQ(web_off.get(key, kSecond), "v:" + key);
    off_lat.push_back(mono_usec() - t0);
  }
  const SimTime off_p999 = quantile(off_lat, 0.999);

  // Ramp phase, defense ON: the same fault, unbounded this time. Hedges
  // absorb the first outliers (the delay cap bounds each hedged request),
  // the first un-hedged ride accrues suspicion, and quarantine routes the
  // rest to the replica.
  injectors_[0].inject_latency_ramp(60 * kMillisecond, 1 << 20);
  std::vector<SimTime> on_lat;
  for (int i = 0; i < 4000; ++i) {
    const std::string& key = keys[static_cast<std::size_t>(i) % keys.size()];
    const SimTime t0 = mono_usec();
    ASSERT_EQ(web_on.get(key, kSecond), "v:" + key);
    on_lat.push_back(mono_usec() - t0);
  }
  const SimTime on_p999 = quantile(on_lat, 0.999);

  EXPECT_GT(off_p999, bound)
      << "the naive client must expose the ramp (off p99.9 "
      << off_p999 / 1000 << "ms, steady p99.9 " << steady_p999 / 1000 << "ms)";
  EXPECT_LT(on_p999, bound)
      << "hedging+quarantine must cap the tail (on p99.9 " << on_p999 / 1000
      << "ms)";
  EXPECT_LT(3 * on_p999, off_p999)
      << "defense on must beat defense off by a wide margin";

  const ProteusClient::Stats& s = web_on.stats();
  EXPECT_GT(s.hedges_fired, 0u);
  EXPECT_GT(s.hedge_wins, 0u) << "backup reads must have rescued requests";
  EXPECT_GE(s.quarantine_enters, 1u)
      << "sustained slowness must quarantine the endpoint";
  // The extra-load guarantee: hedges never exceed rate * load + burst.
  EXPECT_LE(s.hedges_fired,
            static_cast<std::uint64_t>(0.05 * static_cast<double>(s.gets)) +
                static_cast<std::uint64_t>(on_opt.hedge_burst) + 1)
      << "hedge budget must bound extra load to ~5%";
}

// --- end-to-end payload integrity under wire bit flips -----------------------

TEST_F(GrayFleet, BitFlippedRepliesAreNeverServedAndAreReadRepaired) {
  obs::SpanCollector spans(1u << 12, /*sample_every=*/1);
  ProteusClient::Options opt = base_options();
  opt.spans = &spans;
  std::uint64_t backend = 0;
  ProteusClient web(opt, [&](std::string_view key) {
    ++backend;
    return "v:" + std::string(key);
  });

  const std::vector<std::string> keys = keys_on_server0(30);
  for (const std::string& key : keys) web.put(key, "v:" + key, 0);
  for (const std::string& key : keys) {
    ASSERT_EQ(web.get(key, kSecond), "v:" + key);
  }
  ASSERT_EQ(web.stats().corrupt_values, 0u);
  ASSERT_EQ(backend, 0u) << "warm fleet serves from cache";

  // A NIC/switch on server 0's path starts flipping one bit per reply.
  // Some faults land on GET VALUE frames (flipped payloads), some are
  // swallowed by repair-SET replies with nothing to flip; either way not
  // one corrupt byte may reach the caller.
  injectors_[0].inject(net::FaultKind::kBitFlip, 8);
  std::uint64_t corrupt_served = 0;
  for (const std::string& key : keys) {
    if (web.get(key, kSecond) != "v:" + key) ++corrupt_served;
  }
  EXPECT_EQ(corrupt_served, 0u)
      << "acceptance: corrupt_values_served must be zero";

  const ProteusClient::Stats& s = web.stats();
  EXPECT_GE(s.corrupt_values, 2u)
      << "the CRC32C verify must have caught flipped payloads";
  EXPECT_EQ(s.read_repairs, s.corrupt_values)
      << "every corrupt hit must be refilled from the database";
  EXPECT_EQ(backend, s.corrupt_values);

  // The drained injector leaves a clean fleet: one more full pass, no new
  // corruption, and the repaired keys serve from cache again.
  const std::uint64_t seen = s.corrupt_values;
  for (const std::string& key : keys) {
    ASSERT_EQ(web.get(key, kSecond), "v:" + key);
  }
  EXPECT_EQ(web.stats().corrupt_values, seen);

  // Every caught corruption is visible in the trace: a span with the
  // kCorrupt cause.
  std::uint64_t corrupt_spans = 0;
  for (const obs::SpanRecord& rec : spans.snapshot()) {
    if (rec.cause == obs::SpanCause::kCorrupt) ++corrupt_spans;
  }
  EXPECT_GE(corrupt_spans, seen);
}

// --- quarantine and probation re-admission -----------------------------------

TEST_F(GrayFleet, QuarantinedEndpointReadmitsThroughProbationProbes) {
  ProteusClient::Options opt = base_options();
  opt.hedging = false;  // keep the failure accounting on the classic path
  opt.breaker.failure_threshold = 3;
  opt.breaker.backoff.base_delay = 500 * kMillisecond;
  opt.breaker.backoff.max_delay = 2 * kSecond;
  std::uint64_t backend = 0;
  ProteusClient web(opt, [&](std::string_view key) {
    ++backend;
    return "v:" + std::string(key);
  });

  const std::vector<std::string> keys = keys_on_server0(5);
  for (const std::string& key : keys) web.put(key, "v:" + key, 0);
  for (const std::string& key : keys) {
    ASSERT_EQ(web.get(key, kSecond), "v:" + key);
  }
  ASSERT_EQ(backend, 0u);

  // Server 0 starts cutting every connection mid-request. Consecutive
  // errors trip the fail-stop path into quarantine.
  injectors_[0].inject(net::FaultKind::kDropConnection, 1 << 20);
  for (int i = 0; i < 4 && web.stats().quarantine_enters == 0; ++i) {
    web.get(keys[static_cast<std::size_t>(i) % keys.size()], kSecond);
  }
  EXPECT_GE(web.stats().quarantine_enters, 1u);
  EXPECT_EQ(web.endpoint_health(0).state(),
            core::EndpointHealth::State::kQuarantined);

  // While quarantined the endpoint gets no traffic: every get degrades to
  // the backend, still answering correctly.
  const std::uint64_t backend_before = backend;
  for (const std::string& key : keys) {
    EXPECT_EQ(web.get(key, kSecond), "v:" + key);
  }
  EXPECT_EQ(backend, backend_before + keys.size());

  // The fault clears. Past the probe dwell the next get is admitted as a
  // probation probe; three clean responses re-admit the endpoint.
  injectors_[0].reset();
  const SimTime later = 60 * kSecond;  // far beyond base_delay * jitter cap
  int rounds = 0;
  while (web.endpoint_health(0).state() !=
             core::EndpointHealth::State::kHealthy &&
         rounds < 20) {
    for (const std::string& key : keys) {
      EXPECT_EQ(web.get(key, later), "v:" + key);
    }
    ++rounds;
  }
  EXPECT_EQ(web.endpoint_health(0).state(),
            core::EndpointHealth::State::kHealthy);
  EXPECT_GE(web.stats().quarantine_exits, 1u);

  // Re-admitted for real: a full pass adds no backend traffic (server 0
  // kept its items across the connection faults).
  const std::uint64_t backend_after = backend;
  for (const std::string& key : keys) {
    EXPECT_EQ(web.get(key, later), "v:" + key);
  }
  EXPECT_EQ(backend, backend_after);
}

}  // namespace
}  // namespace proteus::client
