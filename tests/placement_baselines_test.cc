#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "hashring/modulo_placement.h"
#include "hashring/random_vn_placement.h"

namespace proteus::ring {
namespace {

// --- Modulo (Static/Naive) -------------------------------------------------

TEST(ModuloPlacement, PerfectlyBalancedAtFixedSize) {
  ModuloPlacement p(10);
  Rng rng(1);
  for (int n : {1, 4, 10}) {
    std::vector<int> counts(static_cast<std::size_t>(n), 0);
    constexpr int kSamples = 100'000;
    for (int i = 0; i < kSamples; ++i) {
      ++counts[static_cast<std::size_t>(p.server_for(rng.next_u64(), n))];
    }
    for (int c : counts) {
      EXPECT_NEAR(c, kSamples / n, kSamples / n * 0.05);
    }
  }
}

TEST(ModuloPlacement, ResizeRemapsAlmostEverything) {
  // The Reddit pathology (§I): growing an n-server modulo layout remaps
  // n/(n+1) of all keys.
  ModuloPlacement p(10);
  Rng rng(2);
  int moved = 0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t h = rng.next_u64();
    if (p.server_for(h, 9) != p.server_for(h, 10)) ++moved;
  }
  EXPECT_NEAR(static_cast<double>(moved) / kSamples, 9.0 / 10.0, 0.01);
}

TEST(ModuloPlacement, DeterministicAcrossInstances) {
  ModuloPlacement a(10), b(10);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t h = rng.next_u64();
    EXPECT_EQ(a.server_for(h, 7), b.server_for(h, 7));
  }
}

// --- Random virtual nodes (Consistent) --------------------------------------

TEST(RandomVnPlacement, SameSeedGivesIdenticalRings) {
  // §VI-C: all web servers share one seed so their views are consistent.
  RandomVirtualNodePlacement a(10, 5, 42);
  RandomVirtualNodePlacement b(10, 5, 42);
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int n : {1, 5, 10}) {
      ASSERT_EQ(a.server_for(h, n), b.server_for(h, n));
    }
  }
}

TEST(RandomVnPlacement, DifferentSeedsGiveDifferentRings) {
  RandomVirtualNodePlacement a(10, 5, 1);
  RandomVirtualNodePlacement b(10, 5, 2);
  Rng rng(5);
  int differ = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t h = rng.next_u64();
    differ += a.server_for(h, 10) != b.server_for(h, 10);
  }
  EXPECT_GT(differ, 500);
}

TEST(RandomVnPlacement, VirtualNodeCount) {
  RandomVirtualNodePlacement p(10, 5, 0);
  EXPECT_EQ(p.num_virtual_nodes(), 50u);  // the paper's n^2/2 for n=10
  EXPECT_EQ(p.vnodes_per_server(), 5);
}

TEST(RandomVnPlacement, RemovingLastServerOnlyMovesItsKeys) {
  // The monotone property of consistent hashing: when server n is turned
  // off, only keys it served are remapped.
  RandomVirtualNodePlacement p(10, 8, 7);
  Rng rng(6);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int n : {4, 7, 9}) {
      const int at_big = p.server_for(h, n + 1);
      if (at_big != n) {
        ASSERT_EQ(at_big, p.server_for(h, n));
      }
    }
  }
}

TEST(RandomVnPlacement, MigrationNearOneOverN) {
  // Consistent hashing's expected migration for +-1 server is ~1/n; random
  // placement fluctuates but must be nowhere near modulo's (n-1)/n.
  RandomVirtualNodePlacement p(10, 8, 11);
  const double m = p.estimate_migration_fraction(9, 10, 100'000);
  EXPECT_LT(m, 0.3);
  EXPECT_GT(m, 0.01);
}

TEST(RandomVnPlacement, RandomPlacementIsImbalanced) {
  // The motivation for Algorithm 1: with few random virtual nodes the
  // min/max share ratio is far from 1 (Fig. 5's "Consistent" curves).
  RandomVirtualNodePlacement p(10, 3, 13);  // ~log2(10) vnodes per server
  double lo = 1.0, hi = 0.0;
  for (int s = 0; s < 10; ++s) {
    const double share = p.estimate_share(s, 10, 100'000);
    lo = std::min(lo, share);
    hi = std::max(hi, share);
  }
  EXPECT_LT(lo / hi, 0.75) << "random placement was suspiciously balanced";
}

TEST(RandomVnPlacement, MoreVnodesImproveBalance) {
  const auto imbalance = [](int vnodes) {
    RandomVirtualNodePlacement p(10, vnodes, 17);
    double lo = 1.0, hi = 0.0;
    for (int s = 0; s < 10; ++s) {
      const double share = p.estimate_share(s, 10, 50'000);
      lo = std::min(lo, share);
      hi = std::max(hi, share);
    }
    return lo / hi;  // 1.0 = perfect
  };
  EXPECT_GT(imbalance(200), imbalance(3));
}

TEST(RandomVnPlacement, AllServersReachableAtFullSize) {
  RandomVirtualNodePlacement p(10, 5, 19);
  std::vector<bool> seen(10, false);
  Rng rng(8);
  for (int i = 0; i < 100'000; ++i) {
    seen[static_cast<std::size_t>(p.server_for(rng.next_u64(), 10))] = true;
  }
  for (int s = 0; s < 10; ++s) EXPECT_TRUE(seen[static_cast<std::size_t>(s)]) << s;
}

}  // namespace
}  // namespace proteus::ring
