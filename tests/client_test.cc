// End-to-end over real sockets: ProteusClient (the web-server role) against
// a fleet of MemcacheDaemon processes-in-threads — Algorithm 2 with digests
// fetched through the memcached protocol, exactly as the paper deployed it.
#include "client/memcache_client.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/memcache_daemon.h"

namespace proteus::client {
namespace {

class Fleet : public ::testing::Test {
 protected:
  static constexpr int kServers = 3;

  void SetUp() override {
    for (int i = 0; i < kServers; ++i) {
      cache::CacheConfig cfg;
      cfg.memory_budget_bytes = 8 << 20;
      daemons_.push_back(std::make_unique<net::MemcacheDaemon>(cfg, 0));
      ASSERT_TRUE(daemons_.back()->ok());
      ports_.push_back(daemons_.back()->port());
      threads_.emplace_back([d = daemons_.back().get()] { d->run(); });
    }
  }

  void TearDown() override {
    for (auto& d : daemons_) d->stop();
    for (auto& t : threads_) t.join();
  }

  ProteusClient::Options client_options(SimTime ttl = 60 * kSecond) {
    ProteusClient::Options opt;
    opt.endpoints = ports_;
    opt.ttl = ttl;
    // These suites assert exact backend-fetch counts; latency-phi accrual
    // reacts to wall-clock scheduling jitter (CI runs many tests per core),
    // so widen the deviation floor until only hard errors move the health
    // machine. gray_failure_test covers the latency-sensitive paths.
    opt.health.min_deviation_usec = 1e9;
    return opt;
  }

  std::vector<std::unique_ptr<net::MemcacheDaemon>> daemons_;
  std::vector<std::uint16_t> ports_;
  std::vector<std::thread> threads_;
};

TEST_F(Fleet, ConnectionBasics) {
  MemcacheConnection conn(ports_[0]);
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn.version(), "VERSION proteus-1.0");
  EXPECT_FALSE(conn.get("missing").has_value());
  EXPECT_TRUE(conn.set("k", "hello world", 7));
  const auto v = conn.get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello world");
  EXPECT_TRUE(conn.erase("k"));
  EXPECT_FALSE(conn.erase("k"));
}

TEST_F(Fleet, BinarySafeValuesOverTheWire) {
  MemcacheConnection conn(ports_[0]);
  std::string payload = "with\r\nnewlines\0and nul";
  payload.resize(22);
  ASSERT_TRUE(conn.set("bin", payload));
  const auto v = conn.get("bin");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, payload);
}

TEST_F(Fleet, DigestFetchOverTheWire) {
  MemcacheConnection conn(ports_[1]);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(conn.set("page:" + std::to_string(i), "x"));
  }
  const auto digest = conn.fetch_digest();
  ASSERT_TRUE(digest.has_value());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(digest->maybe_contains("page:" + std::to_string(i))) << i;
  }
  EXPECT_FALSE(digest->maybe_contains("absent:key"));
}

TEST_F(Fleet, ClientRoutesAndCaches) {
  std::uint64_t backend = 0;
  ProteusClient client(client_options(), [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });
  for (int i = 0; i < 90; ++i) {
    EXPECT_EQ(client.get("page:" + std::to_string(i), 0),
              "db:page:" + std::to_string(i));
  }
  EXPECT_EQ(backend, 90u);
  for (int i = 0; i < 90; ++i) {
    client.get("page:" + std::to_string(i), kSecond);
  }
  EXPECT_EQ(backend, 90u) << "second pass should be all cache hits";
  EXPECT_EQ(client.stats().new_server_hits, 90u);

  // The keys actually landed on all three daemons.
  for (const auto& d : daemons_) {
    EXPECT_GT(d->cache().item_count(), 10u);
  }
}

TEST_F(Fleet, SmoothShrinkOverRealSockets) {
  std::uint64_t backend = 0;
  ProteusClient client(client_options(), [&](std::string_view key) {
    ++backend;
    return "db:" + std::string(key);
  });
  for (int i = 0; i < 120; ++i) client.get("page:" + std::to_string(i), 0);
  ASSERT_EQ(backend, 120u);

  // Shrink 3 -> 2: digests travel through the protocol; re-reading the hot
  // set must cost ZERO backend fetches.
  ASSERT_TRUE(client.resize(2, kSecond));
  EXPECT_TRUE(client.in_transition());
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(client.get("page:" + std::to_string(i), 2 * kSecond),
              "db:page:" + std::to_string(i));
  }
  EXPECT_EQ(backend, 120u) << "shrink caused a miss storm over the wire";
  EXPECT_GT(client.stats().old_server_hits, 20u);

  // Past the TTL the transition finalizes; migrated keys still hit.
  for (int i = 0; i < 120; ++i) {
    client.get("page:" + std::to_string(i), 100 * kSecond);
  }
  EXPECT_FALSE(client.in_transition());
  EXPECT_EQ(backend, 120u);
}

TEST_F(Fleet, PutInvalidatesOldLocationDuringTransition) {
  ProteusClient client(client_options(),
                       [](std::string_view) { return std::string("stale"); });
  // Find a key that moves when shrinking 3 -> 2.
  ring::ProteusPlacement placement(3);
  std::string moving;
  for (int i = 0; i < 200; ++i) {
    const std::string k = "page:" + std::to_string(i);
    if (placement.server_for(hash_bytes(k), 3) !=
        placement.server_for(hash_bytes(k), 2)) {
      moving = k;
      break;
    }
  }
  ASSERT_FALSE(moving.empty());
  client.get(moving, 0);  // cache the backend value on the old server
  client.resize(2, kSecond);
  client.put(moving, "fresh", 2 * kSecond);
  EXPECT_EQ(client.get(moving, 3 * kSecond), "fresh");
  EXPECT_EQ(client.get(moving, 100 * kSecond), "fresh");
}

}  // namespace
}  // namespace proteus::client
