// Cross-module integration tests: digest broadcast between "web servers",
// facade-vs-placement agreement, and end-to-end trace replay through the
// public API comparing Proteus against a brutal actuator.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cache/cache_server.h"
#include "cluster/router.h"
#include "hashring/modulo_placement.h"
#include "proteus.h"  // umbrella header: must compile standalone

namespace proteus {
namespace {

TEST(Integration, UmbrellaHeaderExposesVersion) {
  EXPECT_STREQ(kVersion, "1.0.0");
}

TEST(Integration, DigestBroadcastKeepsWebServersConsistent) {
  // A cache server snapshots its digest through the memcached protocol;
  // two independently decoded routers must make identical decisions.
  cache::CacheConfig cc;
  cc.memory_budget_bytes = 4 << 20;
  cache::CacheServer server(cc);
  for (int i = 0; i < 500; ++i) server.set("page:" + std::to_string(i), "v", 0);

  server.get(cache::kSetBloomFilterKey, 0);
  const std::string wire = *server.get(cache::kGetBloomFilterKey, 0);

  auto placement = std::make_shared<ring::ProteusPlacement>(10);
  auto make_router = [&] {
    auto r = std::make_unique<cluster::Router>(placement, 10);
    std::vector<std::optional<bloom::BloomFilter>> digests(10);
    for (int i = 0; i < 10; ++i) digests[static_cast<std::size_t>(i)] = cache::decode_digest(wire);
    r->begin_transition(4, kSecond, std::move(digests));
    return r;
  };
  auto web1 = make_router();
  auto web2 = make_router();
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "page:" + std::to_string(i);
    const auto d1 = web1->decide(key);
    const auto d2 = web2->decide(key);
    ASSERT_EQ(d1.primary, d2.primary) << key;
    ASSERT_EQ(d1.fallback, d2.fallback) << key;
  }
}

TEST(Integration, DigestGatesFallbackByActualResidency) {
  // Keys resident on the snapshotting server must be offered as fallback;
  // keys never stored must (almost) never be.
  cache::CacheConfig cc;
  cc.memory_budget_bytes = 16 << 20;
  cc.auto_size_digest = true;
  cache::CacheServer server(cc);
  for (int i = 0; i < 2000; ++i) server.set("hot:" + std::to_string(i), "v", 0);
  const bloom::BloomFilter digest = server.snapshot_digest();

  int resident_positive = 0;
  int absent_positive = 0;
  for (int i = 0; i < 2000; ++i) {
    resident_positive += digest.maybe_contains("hot:" + std::to_string(i));
    absent_positive += digest.maybe_contains("cold:" + std::to_string(i));
  }
  EXPECT_EQ(resident_positive, 2000);
  EXPECT_LE(absent_positive, 3);  // pp ~ 1e-4
}

TEST(Integration, FacadeRoutesExactlyByPlacement) {
  ProteusOptions opt;
  opt.max_servers = 8;
  opt.per_server.memory_budget_bytes = 4 << 20;
  Proteus cluster(opt, [](std::string_view k) { return std::string(k); });

  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    cluster.get(key, 0);
    const int expected = cluster.placement().server_for(hash_bytes(key), 8);
    EXPECT_TRUE(cluster.server(expected).contains(key, 0)) << key;
  }
}

TEST(Integration, TraceReplayProteusVersusBrutal) {
  // Replay the same synthetic trace through (a) the Proteus facade and
  // (b) a hand-rolled brutal modulo actuator, applying the same shrink in
  // the middle. Proteus' backend traffic must be far lower afterwards.
  workload::TraceConfig tc;
  tc.duration = 2 * kMinute;
  tc.num_pages = 3000;
  tc.diurnal.mean_rate = 300;
  tc.diurnal.amplitude = 0;
  tc.diurnal.jitter = 0;
  const auto trace = workload::generate_trace(tc);
  const SimTime shrink_at = kMinute;

  // (a) Proteus.
  std::uint64_t proteus_backend = 0;
  {
    ProteusOptions opt;
    opt.max_servers = 10;
    opt.per_server.memory_budget_bytes = 64 << 20;  // no capacity evictions
    opt.ttl = 70 * kSecond;  // covers the post-shrink tail of the trace
    Proteus cluster(opt, [&](std::string_view) {
      ++proteus_backend;
      return std::string("v");
    });
    bool shrunk = false;
    std::uint64_t before = 0;
    for (const auto& ev : trace) {
      if (!shrunk && ev.time >= shrink_at) {
        before = proteus_backend;
        cluster.resize(5, ev.time);
        shrunk = true;
      }
      cluster.get(ev.key, ev.time);
    }
    proteus_backend -= before;  // only count fetches after the shrink
  }

  // (b) Brutal modulo: on shrink, servers 5..9 are wiped and the mapping
  // flips instantly.
  std::uint64_t brutal_backend = 0;
  {
    ring::ModuloPlacement placement(10);
    std::vector<std::unique_ptr<cache::CacheServer>> servers;
    cache::CacheConfig cc;
    cc.memory_budget_bytes = 64 << 20;
    for (int i = 0; i < 10; ++i) {
      servers.push_back(std::make_unique<cache::CacheServer>(cc));
    }
    int active = 10;
    bool shrunk = false;
    std::uint64_t before = 0;
    for (const auto& ev : trace) {
      if (!shrunk && ev.time >= shrink_at) {
        before = brutal_backend;
        active = 5;
        for (int i = 5; i < 10; ++i) servers[static_cast<std::size_t>(i)]->flush();
        shrunk = true;
      }
      auto& server = *servers[static_cast<std::size_t>(
          placement.server_for(hash_bytes(ev.key), active))];
      if (!server.get(ev.key, ev.time).has_value()) {
        ++brutal_backend;
        server.set(ev.key, "v", ev.time);
      }
    }
    brutal_backend -= before;
  }

  EXPECT_LT(proteus_backend * 3, brutal_backend)
      << "proteus=" << proteus_backend << " brutal=" << brutal_backend;
}

TEST(Integration, FacadeSurvivesManyResizeCycles) {
  // Stress the transition machinery: oscillate while serving.
  ProteusOptions opt;
  opt.max_servers = 10;
  opt.per_server.memory_budget_bytes = 8 << 20;
  opt.ttl = 5 * kSecond;
  std::uint64_t backend = 0;
  Proteus cluster(opt, [&](std::string_view) {
    ++backend;
    return std::string("v");
  });

  SimTime now = 0;
  for (int cycle = 0; cycle < 20; ++cycle) {
    cluster.resize(cycle % 2 ? 3 : 10, now);
    for (int i = 0; i < 200; ++i) {
      cluster.get("page:" + std::to_string(i % 100), now);
      now += 10 * kMillisecond;
    }
  }
  // All 100 distinct pages stay hot throughout; after warmup the backend
  // should see almost nothing despite 19 resizes.
  EXPECT_LT(backend, 150u);
  EXPECT_GT(cluster.stats().old_server_hits, 500u);
}

TEST(Integration, ReservedKeysRejectedBySetPath) {
  ProteusOptions opt;
  opt.max_servers = 2;
  Proteus cluster(opt, [](std::string_view) { return std::string("v"); });
  EXPECT_DEATH(cluster.put(std::string(cache::kSetBloomFilterKey), "x", 0),
               "reserved");
}

}  // namespace
}  // namespace proteus
