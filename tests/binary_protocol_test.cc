#include "cache/binary_protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "common/hash.h"

namespace proteus::cache {
namespace {

using binary::Frame;
using binary::Opcode;
using binary::Status;

CacheConfig proto_config() {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 4 << 20;
  cfg.auto_size_digest = false;
  cfg.digest.num_counters = 1 << 14;
  cfg.digest.counter_bits = 4;
  cfg.digest.num_hashes = 4;
  return cfg;
}

struct Rig {
  CacheServer server{proto_config()};
  BinaryProtocolSession session{server};

  // Sends one request and decodes the (first) response frame.
  Frame roundtrip(const Frame& request, SimTime now = 0) {
    const std::string out =
        session.feed(binary::encode_frame(request, binary::kRequestMagic), now);
    std::size_t consumed = 0;
    auto reply = binary::decode_frame(out, consumed);
    EXPECT_TRUE(reply.has_value());
    EXPECT_EQ(consumed, out.size());
    return reply.value_or(Frame{});
  }

  Frame make_set(std::string key, std::string value, std::uint32_t flags = 0,
                 std::uint64_t cas = 0) {
    Frame f;
    f.opcode = Opcode::kSet;
    f.key = std::move(key);
    f.value = std::move(value);
    binary::put_u32(f.extras, flags);
    binary::put_u32(f.extras, 0);  // expiry
    f.cas = cas;
    return f;
  }

  Frame make_get(std::string key, Opcode op = Opcode::kGet) {
    Frame f;
    f.opcode = op;
    f.key = std::move(key);
    return f;
  }
};

TEST(BinaryFrame, EncodeDecodeRoundTrip) {
  Frame f;
  f.opcode = Opcode::kSet;
  f.status_or_vbucket = 7;
  f.opaque = 0xdeadbeef;
  f.cas = 0x1122334455667788ull;
  f.extras = "EXTRAS!!";
  f.key = "the-key";
  f.value = std::string("binary\0value", 12);

  const std::string wire = binary::encode_frame(f, binary::kRequestMagic);
  EXPECT_EQ(wire.size(), binary::kHeaderSize + 8 + 7 + 12);
  std::size_t consumed = 0;
  const auto decoded = binary::decode_frame(wire, consumed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded->opcode, f.opcode);
  EXPECT_EQ(decoded->opaque, f.opaque);
  EXPECT_EQ(decoded->cas, f.cas);
  EXPECT_EQ(decoded->extras, f.extras);
  EXPECT_EQ(decoded->key, f.key);
  EXPECT_EQ(decoded->value, f.value);
}

TEST(BinaryFrame, PartialInputReturnsNothing) {
  Frame f;
  f.opcode = Opcode::kNoop;
  const std::string wire = binary::encode_frame(f, binary::kRequestMagic);
  std::size_t consumed = 0;
  EXPECT_FALSE(binary::decode_frame(wire.substr(0, 10), consumed).has_value());
  EXPECT_FALSE(
      binary::decode_frame(wire.substr(0, wire.size() - 1), consumed)
          .has_value());
}

TEST(BinaryFrame, BigEndianHelpers) {
  std::string out;
  binary::put_u32(out, 0x01020304u);
  EXPECT_EQ(out, std::string("\x01\x02\x03\x04", 4));
  EXPECT_EQ(binary::get_u32(out, 0), 0x01020304u);
  std::string out64;
  binary::put_u64(out64, 0x0102030405060708ull);
  EXPECT_EQ(binary::get_u64(out64, 0), 0x0102030405060708ull);
}

TEST(BinaryProtocol, SetThenGet) {
  Rig rig;
  const Frame stored = rig.roundtrip(rig.make_set("foo", "hello", 42));
  EXPECT_EQ(stored.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  EXPECT_GT(stored.cas, 0u);

  const Frame got = rig.roundtrip(rig.make_get("foo"));
  EXPECT_EQ(got.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  EXPECT_EQ(got.value, "hello");
  ASSERT_EQ(got.extras.size(), 4u);
  EXPECT_EQ(binary::get_u32(got.extras, 0), 42u);  // flags round-trip
  EXPECT_EQ(got.cas, stored.cas);
}

TEST(BinaryProtocol, GetMissAndQuietGet) {
  Rig rig;
  const Frame miss = rig.roundtrip(rig.make_get("absent"));
  EXPECT_EQ(miss.status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyNotFound));
  // Quiet get: NO response at all on miss.
  Frame quiet = rig.make_get("absent", Opcode::kGetQ);
  EXPECT_EQ(rig.session.feed(
                binary::encode_frame(quiet, binary::kRequestMagic), 0),
            "");
}

TEST(BinaryProtocol, GetKEchoesKey) {
  Rig rig;
  rig.roundtrip(rig.make_set("foo", "v"));
  const Frame got = rig.roundtrip(rig.make_get("foo", Opcode::kGetK));
  EXPECT_EQ(got.key, "foo");
  EXPECT_EQ(got.value, "v");
}

TEST(BinaryProtocol, AddAndReplaceSemantics) {
  Rig rig;
  Frame add = rig.make_set("k", "x");
  add.opcode = Opcode::kAdd;
  EXPECT_EQ(rig.roundtrip(add).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kOk));
  EXPECT_EQ(rig.roundtrip(add).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyExists));
  Frame replace = rig.make_set("missing", "y");
  replace.opcode = Opcode::kReplace;
  EXPECT_EQ(rig.roundtrip(replace).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyNotFound));
}

TEST(BinaryProtocol, CasConditionalStore) {
  Rig rig;
  const Frame stored = rig.roundtrip(rig.make_set("k", "v1"));
  const std::uint64_t cas = stored.cas;

  // Store with the matching CAS succeeds and bumps the version.
  const Frame ok = rig.roundtrip(rig.make_set("k", "v2", 0, cas));
  EXPECT_EQ(ok.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  EXPECT_NE(ok.cas, cas);

  // The stale CAS now fails with KeyExists.
  const Frame conflict = rig.roundtrip(rig.make_set("k", "v3", 0, cas));
  EXPECT_EQ(conflict.status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyExists));
  const Frame got = rig.roundtrip(rig.make_get("k"));
  EXPECT_EQ(got.value, "v2");
}

TEST(BinaryProtocol, CasOnAbsentKeyIsNotFound) {
  Rig rig;
  const Frame reply = rig.roundtrip(rig.make_set("ghost", "v", 0, 99));
  EXPECT_EQ(reply.status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyNotFound));
}

TEST(BinaryProtocol, DeleteSemantics) {
  Rig rig;
  rig.roundtrip(rig.make_set("k", "v"));
  Frame del;
  del.opcode = Opcode::kDelete;
  del.key = "k";
  EXPECT_EQ(rig.roundtrip(del).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kOk));
  EXPECT_EQ(rig.roundtrip(del).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyNotFound));
}

TEST(BinaryProtocol, IncrementWithInitialValue) {
  Rig rig;
  Frame incr;
  incr.opcode = Opcode::kIncrement;
  incr.key = "counter";
  binary::put_u64(incr.extras, 5);    // delta
  binary::put_u64(incr.extras, 100);  // initial
  binary::put_u32(incr.extras, 0);    // expiry: create allowed
  const Frame first = rig.roundtrip(incr);
  EXPECT_EQ(first.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  EXPECT_EQ(binary::get_u64(first.value, 0), 100u);  // created at initial
  const Frame second = rig.roundtrip(incr);
  EXPECT_EQ(binary::get_u64(second.value, 0), 105u);
}

TEST(BinaryProtocol, IncrementNoCreateFlag) {
  Rig rig;
  Frame incr;
  incr.opcode = Opcode::kIncrement;
  incr.key = "counter";
  binary::put_u64(incr.extras, 1);
  binary::put_u64(incr.extras, 0);
  binary::put_u32(incr.extras, 0xffffffffu);  // do not create
  EXPECT_EQ(rig.roundtrip(incr).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyNotFound));
}

TEST(BinaryProtocol, DecrementClampsAtZero) {
  Rig rig;
  rig.roundtrip(rig.make_set("c", "3"));
  Frame decr;
  decr.opcode = Opcode::kDecrement;
  decr.key = "c";
  binary::put_u64(decr.extras, 10);
  binary::put_u64(decr.extras, 0);
  binary::put_u32(decr.extras, 0);
  EXPECT_EQ(binary::get_u64(rig.roundtrip(decr).value, 0), 0u);
}

TEST(BinaryProtocol, IncrementNonNumericFails) {
  Rig rig;
  rig.roundtrip(rig.make_set("s", "abc"));
  Frame incr;
  incr.opcode = Opcode::kIncrement;
  incr.key = "s";
  binary::put_u64(incr.extras, 1);
  binary::put_u64(incr.extras, 0);
  binary::put_u32(incr.extras, 0);
  EXPECT_EQ(rig.roundtrip(incr).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kDeltaBadValue));
}

TEST(BinaryProtocol, OpaqueIsEchoed) {
  Rig rig;
  Frame noop;
  noop.opcode = Opcode::kNoop;
  noop.opaque = 0xcafebabe;
  EXPECT_EQ(rig.roundtrip(noop).opaque, 0xcafebabeu);
}

TEST(BinaryProtocol, VersionQuitUnknown) {
  Rig rig;
  Frame version;
  version.opcode = Opcode::kVersion;
  EXPECT_EQ(rig.roundtrip(version).value, "proteus-1.0");

  Frame bogus;
  bogus.opcode = static_cast<Opcode>(0x7e);
  EXPECT_EQ(rig.roundtrip(bogus).status_or_vbucket,
            static_cast<std::uint16_t>(Status::kUnknownCommand));

  Frame quit;
  quit.opcode = Opcode::kQuit;
  rig.roundtrip(quit);
  EXPECT_TRUE(rig.session.closed());
}

TEST(BinaryProtocol, SegmentedFrames) {
  Rig rig;
  const std::string wire =
      binary::encode_frame(rig.make_set("foo", "bar"), binary::kRequestMagic) +
      binary::encode_frame(rig.make_get("foo"), binary::kRequestMagic);
  std::string out;
  for (char c : wire) out += rig.session.feed(std::string_view(&c, 1), 0);
  // Two complete responses, the second carrying the value.
  std::size_t consumed = 0;
  auto first = binary::decode_frame(out, consumed);
  ASSERT_TRUE(first.has_value());
  auto second = binary::decode_frame(
      std::string_view(out).substr(consumed), consumed);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->value, "bar");
}

TEST(BinaryProtocol, DigestThroughBinaryGet) {
  Rig rig;
  for (int i = 0; i < 40; ++i) {
    rig.roundtrip(rig.make_set("page:" + std::to_string(i), "x"));
  }
  rig.roundtrip(rig.make_get(std::string(kSetBloomFilterKey)));
  const Frame blob = rig.roundtrip(rig.make_get(std::string(kGetBloomFilterKey)));
  EXPECT_EQ(blob.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  const bloom::BloomFilter digest = decode_digest(blob.value);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(digest.maybe_contains("page:" + std::to_string(i))) << i;
  }
}

TEST(BinaryProtocol, ReservedKeysNotStorable) {
  Rig rig;
  const Frame reply =
      rig.roundtrip(rig.make_set(std::string(kSetBloomFilterKey), "x"));
  EXPECT_EQ(reply.status_or_vbucket,
            static_cast<std::uint16_t>(Status::kNotStored));
}

TEST(BinaryProtocol, StatStreamEndsWithEmptyKey) {
  Rig rig;
  rig.roundtrip(rig.make_set("k", "v"));
  Frame stat;
  stat.opcode = Opcode::kStat;
  const std::string out =
      rig.session.feed(binary::encode_frame(stat, binary::kRequestMagic), 0);
  // Walk the response stream; the last frame must have an empty key.
  std::string_view rest(out);
  std::size_t frames = 0;
  Frame last;
  while (!rest.empty()) {
    std::size_t consumed = 0;
    auto f = binary::decode_frame(rest, consumed);
    ASSERT_TRUE(f.has_value());
    last = *f;
    rest.remove_prefix(consumed);
    ++frames;
  }
  EXPECT_GE(frames, 5u);
  EXPECT_TRUE(last.key.empty());
}

// --- end-to-end checksum extras ---------------------------------------------

TEST(BinaryProtocol, ChecksummedSetStampsAndGetEchoes) {
  Rig rig;
  const std::string value = "binary-integrity-payload";
  // SET with 12-byte extras: flags(4) expiry(4) crc32c(4).
  Frame set = rig.make_set("ck", value, /*flags=*/9);
  binary::put_u32(set.extras, crc32c(value));
  const Frame stored = rig.roundtrip(set);
  EXPECT_EQ(stored.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));

  // Stock GET (no extras): stock 4-byte reply extras, no checksum leak.
  const Frame plain = rig.roundtrip(rig.make_get("ck"));
  EXPECT_EQ(plain.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  ASSERT_EQ(plain.extras.size(), 4u);
  EXPECT_EQ(binary::get_u32(plain.extras, 0), 9u);
  EXPECT_EQ(plain.value, value);

  // GET with the 4-byte opt-in extras: reply widens to flags(4) crc32c(4).
  Frame get = rig.make_get("ck");
  binary::put_u32(get.extras, 0);  // reserved word, must send 0
  const Frame echoed = rig.roundtrip(get);
  EXPECT_EQ(echoed.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  ASSERT_EQ(echoed.extras.size(), 8u);
  EXPECT_EQ(binary::get_u32(echoed.extras, 0), 9u);
  EXPECT_EQ(binary::get_u32(echoed.extras, 4), crc32c(value));
  EXPECT_EQ(echoed.value, value);
}

TEST(BinaryProtocol, ChecksumMismatchRefusesTheSet) {
  Rig rig;
  const std::string value = "rotted-in-flight";
  Frame set = rig.make_set("bad", value);
  binary::put_u32(set.extras, crc32c(value) ^ 0x80u);
  const Frame refused = rig.roundtrip(set);
  EXPECT_EQ(refused.status_or_vbucket,
            static_cast<std::uint16_t>(Status::kBadChecksum));

  // The refused value must not have been stored.
  const Frame got = rig.roundtrip(rig.make_get("bad"));
  EXPECT_EQ(got.status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyNotFound));
}

TEST(BinaryProtocol, UnstampedItemEchoesStockExtrasOnOptIn) {
  Rig rig;
  // Stored without a checksum: the opt-in GET must answer stock 4-byte
  // extras — there is no stamp to echo and none may be invented.
  rig.roundtrip(rig.make_set("plain", "no-stamp", /*flags=*/3));
  Frame get = rig.make_get("plain");
  binary::put_u32(get.extras, 0);
  const Frame got = rig.roundtrip(get);
  EXPECT_EQ(got.status_or_vbucket, static_cast<std::uint16_t>(Status::kOk));
  ASSERT_EQ(got.extras.size(), 4u);
  EXPECT_EQ(binary::get_u32(got.extras, 0), 3u);
}

}  // namespace
}  // namespace proteus::cache
