#include "hashring/proteus_placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace proteus::ring {
namespace {

TEST(ProteusPlacement, SingleServerOwnsEverything) {
  ProteusPlacement p(1);
  EXPECT_EQ(p.num_virtual_nodes(), 1u);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(p.server_for(rng.next_u64(), 1), 0);
  EXPECT_DOUBLE_EQ(p.share(0, 1), 1.0);
}

TEST(ProteusPlacement, MeetsTheoremOneVirtualNodeBound) {
  // Theorem 1: N(N-1)/2 + 1 virtual nodes are necessary; Algorithm 1 uses
  // exactly that many.
  for (int n : {1, 2, 3, 5, 8, 10, 16, 32, 64}) {
    ProteusPlacement p(n);
    const std::size_t bound =
        static_cast<std::size_t>(n) * (n - 1) / 2 + 1;
    EXPECT_EQ(p.num_virtual_nodes(), bound) << "N=" << n;
    // A handful of nodes may end with empty host ranges (fully consumed by
    // later borrows); the lookup structure holds the rest.
    EXPECT_LE(p.num_host_ranges(), bound) << "N=" << n;
    EXPECT_GE(p.num_host_ranges(), bound - static_cast<std::size_t>(n)) << "N=" << n;
  }
}

TEST(ProteusPlacement, BalanceConditionHoldsForEveryPrefix) {
  // The core §III guarantee: with n active servers each owns exactly K/n.
  constexpr int kN = 16;
  ProteusPlacement p(kN);
  for (int n = 1; n <= kN; ++n) {
    for (int s = 0; s < n; ++s) {
      EXPECT_NEAR(p.share(s, n), 1.0 / n, 1e-9)
          << "server " << s << " of " << n;
    }
    // Inactive servers own nothing.
    for (int s = n; s < kN; ++s) {
      EXPECT_DOUBLE_EQ(p.share(s, n), 0.0);
    }
  }
}

TEST(ProteusPlacement, MigrationMeetsLowerBoundSingleStep) {
  // §II objective: growing n -> n+1 remaps exactly 1/(n+1) of the data —
  // the information-theoretic minimum.
  ProteusPlacement p(12);
  for (int n = 1; n < 12; ++n) {
    EXPECT_NEAR(p.migration_fraction(n, n + 1), 1.0 / (n + 1), 1e-9) << n;
  }
}

TEST(ProteusPlacement, MigrationMeetsLowerBoundMultiStep) {
  // |n' - n| / max(n, n') for arbitrary jumps.
  ProteusPlacement p(10);
  for (int a = 1; a <= 10; ++a) {
    for (int b = 1; b <= 10; ++b) {
      const double expected =
          static_cast<double>(std::abs(a - b)) / std::max(a, b);
      EXPECT_NEAR(p.migration_fraction(a, b), expected, 1e-9)
          << a << "->" << b;
    }
  }
}

TEST(ProteusPlacement, InboundMigrationGoesOnlyToNewServers) {
  ProteusPlacement p(8);
  // Growing 4 -> 6: only servers 4 and 5 gain data, 1/6 each.
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(p.inbound_migration_fraction(s, 4, 6), 0.0, 1e-12) << s;
  }
  EXPECT_NEAR(p.inbound_migration_fraction(4, 4, 6), 1.0 / 6, 1e-9);
  EXPECT_NEAR(p.inbound_migration_fraction(5, 4, 6), 1.0 / 6, 1e-9);
}

TEST(ProteusPlacement, ShrinkSpreadsEvictedLoadEvenly) {
  // Balance Condition direction 2: when s_n turns off, its K/n of data is
  // spread so every survivor ends at K/(n-1) — i.e. each survivor receives
  // K/n(n-1) inbound.
  ProteusPlacement p(10);
  for (int n = 10; n >= 2; --n) {
    for (int s = 0; s < n - 1; ++s) {
      EXPECT_NEAR(p.inbound_migration_fraction(s, n, n - 1),
                  1.0 / (static_cast<double>(n) * (n - 1)), 1e-9)
          << "survivor " << s << " at n=" << n;
    }
  }
}

TEST(ProteusPlacement, LookupAgreesWithEmpiricalShares) {
  // Hash a large key sample; the per-server hit fraction must match 1/n.
  ProteusPlacement p(10);
  Rng rng(77);
  for (int n : {1, 3, 7, 10}) {
    std::vector<int> counts(10, 0);
    constexpr int kSamples = 200'000;
    for (int i = 0; i < kSamples; ++i) {
      const int s = p.server_for(rng.next_u64(), n);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, n);
      ++counts[static_cast<std::size_t>(s)];
    }
    for (int s = 0; s < n; ++s) {
      EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(s)]) / kSamples,
                  1.0 / n, 0.01)
          << "n=" << n << " s=" << s;
    }
  }
}

TEST(ProteusPlacement, LookupIsDeterministic) {
  ProteusPlacement a(10);
  ProteusPlacement b(10);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int n = 1; n <= 10; ++n) {
      ASSERT_EQ(a.server_for(h, n), b.server_for(h, n));
    }
  }
}

TEST(ProteusPlacement, RemovedServerRevertsToFinalSuccessor) {
  // Consistent-hashing property: a key's server changes between n and n+1
  // only if it maps to the (n+1)-th server at n+1 — turning the newest
  // server off moves ONLY that server's keys.
  ProteusPlacement p(10);
  Rng rng(9);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t h = rng.next_u64();
    for (int n = 1; n < 10; ++n) {
      const int at_big = p.server_for(h, n + 1);
      const int at_small = p.server_for(h, n);
      if (at_big != n) {
        ASSERT_EQ(at_big, at_small)
            << "key moved although its server stayed active";
      } else {
        ASSERT_LT(at_small, n);
      }
    }
  }
}

TEST(ProteusPlacement, SharesSumToOne) {
  ProteusPlacement p(9);
  for (int n = 1; n <= 9; ++n) {
    double total = 0;
    for (int s = 0; s < n; ++s) total += p.share(s, n);
    EXPECT_NEAR(total, 1.0, 1e-12) << n;
  }
}

TEST(ProteusPlacement, ReplicaNoConflictMatchesEq3) {
  // Eq. (3): Pnc = prod_{i=0}^{r-1} (n-i)/n.
  EXPECT_DOUBLE_EQ(ProteusPlacement::replica_no_conflict_probability(1, 10), 1.0);
  EXPECT_DOUBLE_EQ(ProteusPlacement::replica_no_conflict_probability(2, 10), 0.9);
  EXPECT_NEAR(ProteusPlacement::replica_no_conflict_probability(3, 10),
              0.9 * 0.8, 1e-12);
  EXPECT_NEAR(ProteusPlacement::replica_no_conflict_probability(3, 1000),
              (999.0 / 1000) * (998.0 / 1000), 1e-12);
  // r > n: conflicts guaranteed.
  EXPECT_DOUBLE_EQ(ProteusPlacement::replica_no_conflict_probability(3, 2), 0.0);
}

TEST(ProteusPlacement, ChainLookupMatchesLiteralRingSuccessor) {
  // Validates the lender-chain shortcut against literal Chord semantics
  // computed by an INDEPENDENT replica of Algorithm 1 that keeps every
  // placed virtual node as a ring point — including nodes whose host range
  // was later consumed entirely (their points stay on the ring and take
  // over when their borrowers power off). A key at `pos` is served by the
  // first active node point clockwise; coincident points are ordered by
  // descending placement sequence (a borrower's point precedes its
  // lender's).
  struct Node {
    std::uint64_t start;
    std::uint64_t length;
    int owner;
    std::size_t seq;  // placement order
  };
  for (int n_max : {2, 3, 5, 8, 12, 16}) {
    // Re-run Algorithm 1 (same arithmetic, independent bookkeeping).
    std::vector<Node> nodes;
    std::vector<std::vector<std::size_t>> owned(
        static_cast<std::size_t>(n_max) + 1);
    nodes.push_back(Node{0, kRingSpace, 0, 0});
    owned[1].push_back(0);
    for (int i = 2; i <= n_max; ++i) {
      const std::uint64_t needed =
          kRingSpace /
          (static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(i - 1));
      for (int j = 1; j < i; ++j) {
        for (std::size_t idx : owned[static_cast<std::size_t>(j)]) {
          if (nodes[idx].length >= needed) {
            nodes.push_back(
                Node{nodes[idx].start, needed, i - 1, nodes.size()});
            nodes[idx].start += needed;
            nodes[idx].length -= needed;
            owned[static_cast<std::size_t>(i)].push_back(nodes.size() - 1);
            break;
          }
        }
      }
    }
    // Ring points: every node's point sits at the end of its final range.
    struct Point {
      std::uint64_t position;
      int owner;
      std::size_t seq;
    };
    std::vector<Point> points;
    for (const Node& node : nodes) {
      points.push_back(Point{node.start + node.length, node.owner, node.seq});
    }
    std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
      if (a.position != b.position) return a.position < b.position;
      return a.seq > b.seq;  // later-placed point comes first clockwise
    });

    const auto reference_lookup = [&](std::uint64_t pos, int n) {
      for (int pass = 0; pass < 2; ++pass) {
        for (const Point& pt : points) {
          if (pass == 0 && pt.position <= pos) continue;
          if (pt.owner < n) return pt.owner;
        }
      }
      ADD_FAILURE() << "no active node found";
      return -1;
    };

    ProteusPlacement p(n_max);
    Rng rng(static_cast<std::uint64_t>(n_max) * 31);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t h = rng.next_u64();
      const std::uint64_t pos = ring_position(h);
      for (int n = 1; n <= n_max; ++n) {
        ASSERT_EQ(p.server_for(h, n), reference_lookup(pos, n))
            << "N=" << n_max << " n=" << n << " pos=" << pos;
      }
    }
  }
}

TEST(ProteusPlacement, LargeClusterStillBalanced) {
  ProteusPlacement p(64);
  for (int n : {1, 13, 37, 64}) {
    for (int s = 0; s < n; ++s) {
      ASSERT_NEAR(p.share(s, n), 1.0 / n, 1e-9) << "n=" << n << " s=" << s;
    }
  }
}

}  // namespace
}  // namespace proteus::ring
