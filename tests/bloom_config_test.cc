#include "bloom/config.h"

#include <gtest/gtest.h>

#include <cmath>

namespace proteus::bloom {
namespace {

TEST(LambertW, KnownValues) {
  EXPECT_NEAR(lambert_w0(0.0), 0.0, 1e-12);
  EXPECT_NEAR(lambert_w0(std::exp(1.0)), 1.0, 1e-10);   // W(e) = 1
  EXPECT_NEAR(lambert_w0(1.0), 0.5671432904097838, 1e-10);  // omega constant
  EXPECT_NEAR(lambert_w0(2.0 * std::exp(2.0)), 2.0, 1e-9);
}

TEST(LambertW, InvertsXExpX) {
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0, 100.0}) {
    const double w = lambert_w0(x);
    EXPECT_NEAR(w * std::exp(w), x, x * 1e-9) << x;
  }
}

TEST(FalsePositiveRate, MatchesEq4) {
  // (1 - e^{-kappa h / l})^h with kappa=1e4, h=4, l=4e5: kappa*h/l = 0.1,
  // (1-e^-0.1)^4 = 0.09516^4 ~ 8.2e-5.
  EXPECT_NEAR(false_positive_rate(10'000, 4, 400'000), 8.2e-5, 0.2e-5);
}

TEST(FalsePositiveRate, DecreasesWithMoreCounters) {
  double prev = 1.0;
  for (std::size_t l = 10'000; l <= 1'000'000; l *= 10) {
    const double fp = false_positive_rate(10'000, 4, l);
    EXPECT_LT(fp, prev);
    prev = fp;
  }
}

TEST(FalseNegativeBound, MatchesEq5WorkedExample) {
  // l * (e kappa h / (2^b l))^{2^b}: kappa=1e4, h=4, l=4e5, b=3 -> ~7e-7.
  const double bound = false_negative_bound(10'000, 4, 400'000, 3);
  EXPECT_LT(bound, 1e-4);   // satisfies pn = 1e-4 (paper: "more than enough")
  EXPECT_GT(bound, 1e-12);
  // b=2 fails the same constraint (the paper's minimality of b=3).
  EXPECT_GT(false_negative_bound(10'000, 4, 400'000, 2), 1e-4);
}

TEST(FalseNegativeBound, DecreasesWithWiderCounters) {
  double prev = 1e9;
  for (unsigned b = 1; b <= 6; ++b) {
    const double bound = false_negative_bound(10'000, 4, 400'000, b);
    EXPECT_LT(bound, prev) << "b=" << b;
    prev = bound;
  }
}

TEST(MinCounters, SatisfiesConstraintTightly) {
  const std::size_t l = min_counters_for_fp(10'000, 4, 1e-4);
  EXPECT_LE(false_positive_rate(10'000, 4, l), 1e-4);
  // One fewer counter (well, 1% fewer) violates it: the bound is tight.
  EXPECT_GT(false_positive_rate(10'000, 4, l - l / 100), 1e-4);
}

TEST(Optimize, ReproducesPaperWorkedExample) {
  // Paper §IV-B: (kappa=1e4, h=4, pp=pn=1e-4) -> l ~ 4e5, b = 3,
  // "about 150KB memory per digest".
  const BloomParams p = optimize(10'000, 4, 1e-4, 1e-4);
  EXPECT_NEAR(static_cast<double>(p.num_counters), 4e5, 0.3e5);
  EXPECT_EQ(p.counter_bits, 3u);
  EXPECT_NEAR(static_cast<double>(p.memory_bytes()), 150.0 * 1024, 20.0 * 1024);
  EXPECT_EQ(p.num_hashes, 4u);
  EXPECT_EQ(p.expected_keys, 10'000u);
}

TEST(Optimize, SatisfiesBothConstraints) {
  for (std::size_t kappa : {1'000u, 50'000u, 1'000'000u}) {
    for (double bound : {1e-3, 1e-5}) {
      const BloomParams p = optimize(kappa, 4, bound, bound);
      EXPECT_LE(false_positive_rate(kappa, 4, p.num_counters), bound);
      EXPECT_LE(false_negative_bound(kappa, 4, p.num_counters, p.counter_bits),
                bound);
    }
  }
}

TEST(Optimize, TighterBoundsCostMoreMemory) {
  const BloomParams loose = optimize(100'000, 4, 1e-2, 1e-2);
  const BloomParams tight = optimize(100'000, 4, 1e-6, 1e-6);
  EXPECT_GT(tight.memory_bytes(), loose.memory_bytes());
}

TEST(ClosedFormCounterBits, AgreesWithEnumeration) {
  // The Lambert-W closed form should land within one integer of the
  // enumerated optimum (it solves the relaxed real-valued problem).
  const std::size_t l = min_counters_for_fp(10'000, 4, 1e-4);
  const double b_real = closed_form_counter_bits(10'000, 4, l, 1e-4);
  const BloomParams p = optimize(10'000, 4, 1e-4, 1e-4);
  EXPECT_NEAR(std::ceil(b_real), static_cast<double>(p.counter_bits), 1.0);
}

TEST(BloomParams, DigestIsMuchSmallerThanCbf) {
  const BloomParams p = optimize(10'000, 4, 1e-4, 1e-4);
  EXPECT_EQ(p.digest_bytes(), (p.num_counters + 7) / 8);
  EXPECT_LT(p.digest_bytes(), p.memory_bytes());
}

}  // namespace
}  // namespace proteus::bloom
