#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace proteus {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
  }
  // Different seed diverges immediately with overwhelming probability.
  Rng a2(42);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(2);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70'000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10'000, 500);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 200'000; ++i) sum += rng.next_exponential(0.5);
  EXPECT_NEAR(sum / 200'000, 0.5, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng s1 = parent.fork(1);
  Rng s2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += s1.next_u64() == s2.next_u64();
  EXPECT_EQ(equal, 0);
}

TEST(Zipf, Rank0IsMostPopular) {
  ZipfSampler zipf(1000, 0.9);
  Rng rng(6);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200'000; ++i) ++counts[zipf(rng)];
  EXPECT_EQ(std::distance(counts.begin(),
                          std::max_element(counts.begin(), counts.end())),
            0);
  // Popularity decays: decade sums strictly decrease.
  const auto decade = [&](int lo, int hi) {
    int s = 0;
    for (int i = lo; i < hi; ++i) s += counts[i];
    return s;
  };
  EXPECT_GT(decade(0, 10), decade(10, 100) / 5);
  EXPECT_GT(decade(0, 100), decade(100, 1000) / 3);
}

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler zipf(37, 1.0);  // exercises the alpha == 1 log branch
  Rng rng(7);
  for (int i = 0; i < 50'000; ++i) ASSERT_LT(zipf(rng), 37u);
}

TEST(Zipf, FrequencyMatchesPowerLaw) {
  // For Zipf(alpha), count(rank r) ~ r^-alpha: check the log-log slope
  // between rank 1 and rank 64 is within 15% of -alpha.
  const double alpha = 0.8;
  ZipfSampler zipf(100'000, alpha);
  Rng rng(8);
  std::vector<double> counts(100'000, 0);
  for (int i = 0; i < 2'000'000; ++i) ++counts[zipf(rng)];
  const double slope = std::log(counts[63] / counts[0]) / std::log(64.0);
  EXPECT_NEAR(slope, -alpha, 0.12);
}

TEST(Zipf, SingleElementDomain) {
  ZipfSampler zipf(1, 0.9);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

}  // namespace
}  // namespace proteus
