// Randomized invariant tests ("fuzz-lite"): deterministic seeds, thousands
// of random operations, invariants checked after every step.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cache/text_protocol.h"
#include "common/rng.h"
#include "core/proteus.h"

namespace proteus {
namespace {

// --- protocol: responses must not depend on TCP segmentation ---------------

class ProtocolSegmentation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSegmentation, ResponseInvariantUnderChunking) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  // Build a random but valid command script.
  std::string wire;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(40));
    switch (rng.next_below(5)) {
      case 0: {
        const auto len = static_cast<std::size_t>(rng.next_below(64));
        std::string payload;
        for (std::size_t b = 0; b < len; ++b) {
          payload += static_cast<char>('a' + rng.next_below(26));
        }
        wire += "set " + key + " " + std::to_string(rng.next_below(100)) +
                " 0 " + std::to_string(len) + "\r\n" + payload + "\r\n";
        break;
      }
      case 1: wire += "get " + key + "\r\n"; break;
      case 2: wire += "delete " + key + "\r\n"; break;
      case 3: wire += "get " + key + " other\r\n"; break;
      case 4: wire += "stats\r\n"; break;
    }
  }

  const auto run_chunked = [&](std::size_t max_chunk) {
    cache::CacheConfig cfg;
    cfg.memory_budget_bytes = 4 << 20;
    cache::CacheServer server(cfg);
    cache::TextProtocolSession session(server);
    std::string out;
    Rng chunk_rng(seed ^ max_chunk);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(
          wire.size() - pos, 1 + chunk_rng.next_below(max_chunk));
      out += session.feed(std::string_view(wire).substr(pos, n), 0);
      pos += n;
    }
    return out;
  };

  const std::string whole = run_chunked(wire.size());
  EXPECT_EQ(run_chunked(1), whole);    // byte-at-a-time
  EXPECT_EQ(run_chunked(7), whole);    // odd small chunks
  EXPECT_EQ(run_chunked(1024), whole); // mixed large chunks
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSegmentation,
                         ::testing::Values(1ull, 17ull, 3333ull, 98765ull));

// --- facade: random op/resize interleavings never serve stale data ----------

class FacadeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FacadeFuzz, NeverServesStaleDataAcrossRandomResizes) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  ProteusOptions opt;
  opt.max_servers = 8;
  opt.per_server.memory_budget_bytes = 32 << 20;  // no capacity evictions
  opt.per_server.auto_size_digest = false;
  opt.per_server.digest.num_counters = 1 << 14;
  opt.per_server.digest.counter_bits = 4;
  opt.per_server.digest.num_hashes = 4;
  opt.ttl = 2 * kSecond;

  // The model: authoritative key -> latest value. The backend serves the
  // model's current value (as a database would).
  std::map<std::string, std::string> model;
  std::uint64_t version = 0;
  Proteus cluster(opt, [&](std::string_view key) {
    auto it = model.find(std::string(key));
    return it != model.end() ? it->second : "default:" + std::string(key);
  });

  SimTime now = 0;
  for (int op = 0; op < 8000; ++op) {
    now += from_seconds(0.01 + rng.next_double() * 0.05);
    const std::string key = "k" + std::to_string(rng.next_below(120));
    const auto action = rng.next_below(100);
    if (action < 55) {
      // GET must return the model value (or the default if never put).
      const std::string got = cluster.get(key, now);
      const auto it = model.find(key);
      const std::string expected =
          it != model.end() ? it->second : "default:" + key;
      ASSERT_EQ(got, expected) << "stale read of " << key << " at op " << op;
    } else if (action < 80) {
      // PUT through the cluster updates cache AND the backing model (write
      // through), so future reads must observe it.
      const std::string value = "v" + std::to_string(++version);
      model[key] = value;
      cluster.put(key, value, now);
    } else if (action < 90) {
      cluster.erase(key, now);
      // After erase the next read refetches from the model — still fresh.
    } else {
      cluster.resize(1 + static_cast<int>(rng.next_below(8)), now);
    }
  }
  // Sanity: the run exercised both mechanisms.
  EXPECT_GT(cluster.stats().resizes, 100u);
  EXPECT_GT(cluster.stats().old_server_hits, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FacadeFuzz,
                         ::testing::Values(2ull, 42ull, 777ull, 123456ull));

}  // namespace
}  // namespace proteus
