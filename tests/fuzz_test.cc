// Randomized invariant tests ("fuzz-lite"): deterministic seeds, thousands
// of random operations, invariants checked after every step.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "cache/text_protocol.h"
#include "common/hash.h"
#include "common/rng.h"
#include "core/proteus.h"
#include "obs/span.h"

namespace proteus {
namespace {

// --- protocol: responses must not depend on TCP segmentation ---------------

class ProtocolSegmentation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSegmentation, ResponseInvariantUnderChunking) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  // Build a random but valid command script.
  std::string wire;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(40));
    switch (rng.next_below(5)) {
      case 0: {
        const auto len = static_cast<std::size_t>(rng.next_below(64));
        std::string payload;
        for (std::size_t b = 0; b < len; ++b) {
          payload += static_cast<char>('a' + rng.next_below(26));
        }
        wire += "set " + key + " " + std::to_string(rng.next_below(100)) +
                " 0 " + std::to_string(len) + "\r\n" + payload + "\r\n";
        break;
      }
      case 1: wire += "get " + key + "\r\n"; break;
      case 2: wire += "delete " + key + "\r\n"; break;
      case 3: wire += "get " + key + " other\r\n"; break;
      case 4: wire += "stats\r\n"; break;
    }
  }

  const auto run_chunked = [&](std::size_t max_chunk) {
    cache::CacheConfig cfg;
    cfg.memory_budget_bytes = 4 << 20;
    cache::CacheServer server(cfg);
    cache::TextProtocolSession session(server);
    std::string out;
    Rng chunk_rng(seed ^ max_chunk);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(
          wire.size() - pos, 1 + chunk_rng.next_below(max_chunk));
      out += session.feed(std::string_view(wire).substr(pos, n), 0);
      pos += n;
    }
    return out;
  };

  const std::string whole = run_chunked(wire.size());
  EXPECT_EQ(run_chunked(1), whole);    // byte-at-a-time
  EXPECT_EQ(run_chunked(7), whole);    // odd small chunks
  EXPECT_EQ(run_chunked(1024), whole); // mixed large chunks
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSegmentation,
                         ::testing::Values(1ull, 17ull, 3333ull, 98765ull));

// --- sharding: a 4-shard engine is reply-invariant vs the bare cache --------
//
// Same random script, same chunkings, two backends: a single CacheServer
// and a 4-shard ShardedCacheServer. Lock striping is an implementation
// detail — every reply byte, `stats` output included, must be identical.

class ShardReplyInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardReplyInvariance, FourShardEngineMatchesBareCacheReplies) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  std::string wire;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(40));
    switch (rng.next_below(6)) {
      case 0: {
        const auto len = static_cast<std::size_t>(rng.next_below(64));
        std::string payload;
        for (std::size_t b = 0; b < len; ++b) {
          payload += static_cast<char>('a' + rng.next_below(26));
        }
        wire += "set " + key + " " + std::to_string(rng.next_below(100)) +
                " 0 " + std::to_string(len) + "\r\n" + payload + "\r\n";
        break;
      }
      case 1: wire += "get " + key + "\r\n"; break;
      case 2: wire += "delete " + key + "\r\n"; break;
      case 3: wire += "get " + key + " other\r\n"; break;
      case 4: wire += "stats\r\n"; break;
      case 5: wire += "incr " + key + " 1\r\n"; break;
    }
  }

  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 4 << 20;
  const auto run_bare = [&](std::size_t max_chunk) {
    cache::CacheServer server(cfg);
    cache::TextProtocolSession session(server);
    std::string out;
    Rng chunk_rng(seed ^ max_chunk);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(
          wire.size() - pos, 1 + chunk_rng.next_below(max_chunk));
      out += session.feed(std::string_view(wire).substr(pos, n), 0);
      pos += n;
    }
    return out;
  };
  const auto run_sharded = [&](std::size_t max_chunk) {
    cache::ShardedCacheServer engine(cfg, 4);
    cache::TextProtocolSession session(engine);
    std::string out;
    Rng chunk_rng(seed ^ max_chunk);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(
          wire.size() - pos, 1 + chunk_rng.next_below(max_chunk));
      out += session.feed(std::string_view(wire).substr(pos, n), 0);
      pos += n;
    }
    return out;
  };

  const std::string bare = run_bare(wire.size());
  EXPECT_EQ(run_sharded(wire.size()), bare);
  EXPECT_EQ(run_sharded(1), bare);
  EXPECT_EQ(run_sharded(7), bare);
  EXPECT_EQ(run_sharded(1024), bare);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardReplyInvariance,
                         ::testing::Values(1ull, 17ull, 3333ull, 98765ull));

// --- facade: random op/resize interleavings never serve stale data ----------

class FacadeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FacadeFuzz, NeverServesStaleDataAcrossRandomResizes) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  ProteusOptions opt;
  opt.max_servers = 8;
  opt.per_server.memory_budget_bytes = 32 << 20;  // no capacity evictions
  opt.per_server.auto_size_digest = false;
  opt.per_server.digest.num_counters = 1 << 14;
  opt.per_server.digest.counter_bits = 4;
  opt.per_server.digest.num_hashes = 4;
  opt.ttl = 2 * kSecond;

  // The model: authoritative key -> latest value. The backend serves the
  // model's current value (as a database would).
  std::map<std::string, std::string> model;
  std::uint64_t version = 0;
  Proteus cluster(opt, [&](std::string_view key) {
    auto it = model.find(std::string(key));
    return it != model.end() ? it->second : "default:" + std::string(key);
  });

  SimTime now = 0;
  for (int op = 0; op < 8000; ++op) {
    now += from_seconds(0.01 + rng.next_double() * 0.05);
    const std::string key = "k" + std::to_string(rng.next_below(120));
    const auto action = rng.next_below(100);
    if (action < 55) {
      // GET must return the model value (or the default if never put).
      const std::string got = cluster.get(key, now);
      const auto it = model.find(key);
      const std::string expected =
          it != model.end() ? it->second : "default:" + key;
      ASSERT_EQ(got, expected) << "stale read of " << key << " at op " << op;
    } else if (action < 80) {
      // PUT through the cluster updates cache AND the backing model (write
      // through), so future reads must observe it.
      const std::string value = "v" + std::to_string(++version);
      model[key] = value;
      cluster.put(key, value, now);
    } else if (action < 90) {
      cluster.erase(key, now);
      // After erase the next read refetches from the model — still fresh.
    } else {
      cluster.resize(1 + static_cast<int>(rng.next_below(8)), now);
    }
  }
  // Sanity: the run exercised both mechanisms.
  EXPECT_GT(cluster.stats().resizes, 100u);
  EXPECT_GT(cluster.stats().old_server_hits, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FacadeFuzz,
                         ::testing::Values(2ull, 42ull, 777ull, 123456ull));

// --- overload: the pipeline shed path must never desync the stream -----------

class ShedPathFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShedPathFuzz, PipelineShedKeepsProtocolSyncUnderChunking) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  // Random valid script, heavy on storage commands: a shed set must still
  // consume its data block or the payload replays as commands.
  std::string wire;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(40));
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const auto len = static_cast<std::size_t>(rng.next_below(64));
        std::string payload;
        for (std::size_t b = 0; b < len; ++b) {
          payload += static_cast<char>('a' + rng.next_below(26));
        }
        wire += "set " + key + " 0 0 " + std::to_string(len) + "\r\n" +
                payload + "\r\n";
        break;
      }
      case 2: wire += "get " + key + "\r\n"; break;
      case 3: wire += "delete " + key + " noreply\r\n"; break;
    }
  }

  for (const int cap : {1, 2, 5}) {
    for (const std::size_t max_chunk : {std::size_t{1}, std::size_t{9},
                                        std::size_t{4096}}) {
      cache::CacheConfig cfg;
      cfg.memory_budget_bytes = 4 << 20;
      cache::CacheServer server(cfg);
      std::atomic<std::uint64_t> sheds{0};
      cache::TextProtocolSession session(server, nullptr, nullptr, -1,
                                         cache::PipelinePolicy{cap, &sheds});
      Rng chunk_rng(seed ^ max_chunk ^ static_cast<std::uint64_t>(cap));
      std::size_t pos = 0;
      while (pos < wire.size()) {
        const std::size_t n = std::min<std::size_t>(
            wire.size() - pos, 1 + chunk_rng.next_below(max_chunk));
        session.feed(std::string_view(wire).substr(pos, n), 0);
        pos += n;
      }
      // However many commands were shed along the way, the session must
      // still be in perfect protocol sync: a fresh single-command batch
      // (within any cap >= 1) round-trips exactly.
      ASSERT_FALSE(session.closed());
      EXPECT_EQ(session.feed("set canary 0 0 2\r\nok\r\n", 0), "STORED\r\n");
      EXPECT_EQ(session.feed("get canary\r\n", 0),
                "VALUE canary 0 2\r\nok\r\nEND\r\n");
      if (cap == 1 && max_chunk == 4096) {
        EXPECT_GT(sheds.load(), 0u)
            << "big batches under cap 1 must actually exercise the shed path";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShedPathFuzz,
                         ::testing::Values(5ull, 21ull, 909ull, 424242ull));

// --- trace-token decoder: arbitrary bytes, exact-shape acceptance ------------

TEST(TraceTokenDecodeFuzz, ArbitraryStringsMatchTheShapeCheck) {
  // The decoder must accept EXACTLY "O" + 16 lowercase hex digits and
  // nothing else — cross-checked against an independent shape predicate on
  // 20k random strings drawn from a hostile charset.
  const std::string charset = "0123456789abcdefABCDEFOXo \t\r\n\\\"{}";
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    std::string s;
    const std::size_t len = rng.next_below(24);
    for (std::size_t b = 0; b < len; ++b) {
      s += charset[rng.next_below(charset.size())];
    }
    if (rng.next_below(4) == 0 && !s.empty()) s[0] = 'O';  // bias the prefix
    bool shape = s.size() == 17 && s[0] == 'O';
    if (shape) {
      for (std::size_t b = 1; b < s.size(); ++b) {
        const char c = s[b];
        shape &= (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
      }
    }
    std::uint64_t out = 0;
    EXPECT_EQ(obs::decode_trace_token(s, out), shape) << "input: " << s;
  }
  // And the codec round-trips random ids.
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = rng.next_u64() | 1;  // nonzero
    std::uint64_t back = 0;
    ASSERT_TRUE(obs::decode_trace_token(obs::encode_trace_token(id), back));
    EXPECT_EQ(back, id);
  }
}

// --- text protocol: O-tokens are invisible to the reply stream ---------------

class TraceTokenProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TraceTokenProtocolFuzz, TokenedScriptMatchesUntokenedReplies) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  // Invalid token-like strings: stock keys to our parser (and to stock
  // memcached), so appending one to a `get` must not change the reply.
  const std::string invalid[] = {
      "O123", "Oscar", "O00000000DEADBEEF", "X0000000000000001",
      "O000000000000000g", "O00000000000000012",
  };

  // Two scripts built in lockstep: `tokened` carries trace tokens,
  // `reference` is the protocol-equivalent without valid tokens (invalid
  // ones stay — they are ordinary never-stored keys). Their reply streams
  // must be byte-identical, and the tokened session must record server
  // spans for exactly the valid ids.
  std::string tokened, reference;
  std::set<std::uint64_t> expected_ids;
  for (int i = 0; i < 400; ++i) {
    const std::string key = "k" + std::to_string(rng.next_below(40));
    std::string tok;       // appended to the tokened script only
    std::string keep_tok;  // appended to BOTH (invalid -> plain key)
    const auto choice = rng.next_below(3);
    if (choice == 0) {
      const std::uint64_t id = rng.next_u64() | 1;
      tok = " " + obs::encode_trace_token(id);
      expected_ids.insert(id);
    } else if (choice == 1) {
      keep_tok = " " + invalid[rng.next_below(std::size(invalid))];
    }
    switch (rng.next_below(4)) {
      case 0: {
        const auto len = static_cast<std::size_t>(rng.next_below(32));
        const std::string payload(len, 'x');
        const std::string head = "set " + key + " 0 0 " +
                                 std::to_string(len);
        // Invalid tokens would change `set` arity on a stock parser, so
        // only valid (strippable) tokens ride storage commands.
        tokened += head + tok + "\r\n" + payload + "\r\n";
        reference += head + "\r\n" + payload + "\r\n";
        break;
      }
      case 1:
        tokened += "get " + key + tok + keep_tok + "\r\n";
        reference += "get " + key + keep_tok + "\r\n";
        break;
      case 2:
        tokened += "gets " + key + tok + keep_tok + "\r\n";
        reference += "gets " + key + keep_tok + "\r\n";
        break;
      case 3:
        tokened += "delete " + key + tok + "\r\n";
        reference += "delete " + key + "\r\n";
        break;
    }
  }

  const auto run = [&](const std::string& wire, obs::SpanCollector* spans,
                       std::size_t max_chunk) {
    cache::CacheConfig cfg;
    cfg.memory_budget_bytes = 4 << 20;
    cache::CacheServer server(cfg);
    cache::TextProtocolSession session(server, nullptr, spans, /*server_id=*/3);
    std::string out;
    Rng chunk_rng(seed ^ max_chunk);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(
          wire.size() - pos, 1 + chunk_rng.next_below(max_chunk));
      out += session.feed(std::string_view(wire).substr(pos, n), 0);
      pos += n;
    }
    return out;
  };

  obs::SpanCollector spans(1u << 14, /*sample_every=*/1);
  const std::string tokened_out = run(tokened, &spans, tokened.size());
  EXPECT_EQ(tokened_out, run(reference, nullptr, reference.size()));
  // Token stripping must survive TCP segmentation too.
  EXPECT_EQ(run(tokened, nullptr, 1), tokened_out);
  EXPECT_EQ(run(tokened, nullptr, 7), tokened_out);

  std::set<std::uint64_t> seen_ids;
  for (const obs::SpanRecord& s : spans.snapshot()) {
    EXPECT_EQ(s.server, 3);
    seen_ids.insert(s.trace_id);
  }
  EXPECT_EQ(seen_ids, expected_ids)
      << "server spans must appear for exactly the valid trace tokens";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceTokenProtocolFuzz,
                         ::testing::Values(5ull, 404ull, 31337ull));

// --- meta tokens: O (trace), E (epoch), C (checksum) combine in ANY order ----

cache::CacheConfig small_cache() {
  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 4 << 20;
  return cfg;
}

TEST(MetaTokenPermutations, GetAcceptsEveryTokenOrder) {
  cache::CacheServer server(small_cache());
  cache::TextProtocolSession session(server);

  const std::string value = "integrity-checked-payload";
  const std::string crc_tok = obs::encode_checksum_token(crc32c(value));
  ASSERT_EQ(session.feed("set pk 5 0 " + std::to_string(value.size()) + " " +
                             crc_tok + "\r\n" + value + "\r\n",
                         0),
            "STORED\r\n");

  const std::string o = obs::encode_trace_token(0x1234abcd5678ef01ULL);
  const std::string e = obs::encode_epoch_token(7);
  const std::string c = "C00000000";  // any C token on a get opts into echo
  // A stamped item echoes its stored checksum on the VALUE line once the
  // get opts in — regardless of where the C token sits in the tail.
  const std::string expected = "VALUE pk 5 " + std::to_string(value.size()) +
                               " " + crc_tok + "\r\n" + value + "\r\nEND\r\n";

  std::array<std::string, 3> toks{o, e, c};
  std::sort(toks.begin(), toks.end());
  int orders = 0;
  do {
    const std::string tail = " " + toks[0] + " " + toks[1] + " " + toks[2];
    EXPECT_EQ(session.feed("get pk" + tail + "\r\n", 0), expected)
        << "token order: " << tail;
    // `bg` mixes into the tail at any position too.
    for (std::size_t at = 0; at < 3; ++at) {
      std::vector<std::string> with_bg(toks.begin(), toks.end());
      with_bg.insert(with_bg.begin() + static_cast<std::ptrdiff_t>(at), "bg");
      std::string line = "get pk";
      for (const std::string& t : with_bg) line += " " + t;
      EXPECT_EQ(session.feed(line + "\r\n", 0), expected) << line;
    }
    ++orders;
  } while (std::next_permutation(toks.begin(), toks.end()));
  EXPECT_EQ(orders, 6);

  // Without the C opt-in the VALUE line stays stock even for stamped items,
  // and an unstamped item echoes nothing even when the get opts in.
  EXPECT_EQ(session.feed("get pk " + o + " " + e + "\r\n", 0),
            "VALUE pk 5 " + std::to_string(value.size()) + "\r\n" + value +
                "\r\nEND\r\n");
  ASSERT_EQ(session.feed("set plain 0 0 2\r\nhi\r\n", 0), "STORED\r\n");
  EXPECT_EQ(session.feed("get plain " + c + " " + o + "\r\n", 0),
            "VALUE plain 0 2\r\nhi\r\nEND\r\n");
}

TEST(MetaTokenPermutations, SetAcceptsEveryTokenOrderAndStamps) {
  cache::CacheServer server(small_cache());
  cache::TextProtocolSession session(server);

  const std::string value = "stamped-at-set-time";
  const std::string good = obs::encode_checksum_token(crc32c(value));
  const std::string bad = obs::encode_checksum_token(crc32c(value) ^ 1u);
  const std::string o = obs::encode_trace_token(0xfeedf00ddeadbeefULL);
  const std::string e = obs::encode_epoch_token(7);

  std::array<std::string, 3> toks{o, e, good};
  std::sort(toks.begin(), toks.end());
  int idx = 0;
  do {
    const std::string key = "sk" + std::to_string(idx++);
    const std::string tail = " " + toks[0] + " " + toks[1] + " " + toks[2];
    ASSERT_EQ(session.feed("set " + key + " 0 0 " +
                               std::to_string(value.size()) + tail + "\r\n" +
                               value + "\r\n",
                           0),
              "STORED\r\n")
        << "token order: " << tail;
    // The checksum stamped at set time echoes back on an opted-in get.
    EXPECT_EQ(session.feed("get " + key + " C00000000\r\n", 0),
              "VALUE " + key + " 0 " + std::to_string(value.size()) + " " +
                  good + "\r\n" + value + "\r\nEND\r\n");
  } while (std::next_permutation(toks.begin(), toks.end()));

  // A mismatched checksum is refused no matter where it sits in the tail.
  for (const std::string tail :
       {" " + bad + " " + o + " " + e, " " + o + " " + bad + " " + e,
        " " + o + " " + e + " " + bad}) {
    EXPECT_EQ(session.feed("set rot 0 0 " + std::to_string(value.size()) +
                               tail + "\r\n" + value + "\r\n",
                           0),
              "SERVER_ERROR bad-checksum\r\n")
        << "token order: " << tail;
    EXPECT_EQ(session.feed("get rot\r\n", 0), "END\r\n")
        << "refused set must not store";
  }
}

// --- fuzz: shuffled token tails leave the reply stream invariant -------------

class MetaTokenOrderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetaTokenOrderFuzz, ShuffledTokenTailsMatchAndEchoCorrectChecksums) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  // Two scripts with identical commands and identical token SETS but
  // independently shuffled token ORDER. Any-order parsing means their reply
  // streams must be byte-identical; every echoed C token must match the CRC
  // of the value it rides with.
  std::map<std::string, std::string> model;  // each key set at most once
  std::vector<std::string> stored;
  std::string script_a, script_b;
  Rng shuffle_a(seed * 2 + 1), shuffle_b(seed * 7 + 5);
  const auto tail = [](std::vector<std::string> toks, Rng& r) {
    for (std::size_t i = toks.size(); i > 1; --i) {
      std::swap(toks[i - 1], toks[r.next_below(i)]);
    }
    std::string out;
    for (const std::string& t : toks) out += " " + t;
    return out;
  };

  for (int i = 0; i < 300; ++i) {
    std::vector<std::string> toks;
    if (rng.next_below(2) == 0) {
      toks.push_back(obs::encode_trace_token(rng.next_u64() | 1));
    }
    if (rng.next_below(2) == 0) toks.push_back(obs::encode_epoch_token(7));
    if (rng.next_below(4) == 0) toks.push_back("bg");
    if (stored.empty() || rng.next_below(3) == 0) {
      const std::string key = "k" + std::to_string(i);
      std::string payload;
      const auto len = 1 + rng.next_below(48);
      for (std::uint64_t b = 0; b < len; ++b) {
        payload += static_cast<char>('a' + rng.next_below(26));
      }
      toks.push_back(obs::encode_checksum_token(crc32c(payload)));
      const std::string head =
          "set " + key + " 0 0 " + std::to_string(payload.size());
      script_a += head + tail(toks, shuffle_a) + "\r\n" + payload + "\r\n";
      script_b += head + tail(toks, shuffle_b) + "\r\n" + payload + "\r\n";
      model[key] = payload;
      stored.push_back(key);
    } else {
      const std::string key = rng.next_below(8) == 0
                                  ? "never-set"
                                  : stored[rng.next_below(stored.size())];
      if (rng.next_below(2) == 0) toks.push_back("C00000000");
      script_a += "get " + key + tail(toks, shuffle_a) + "\r\n";
      script_b += "get " + key + tail(toks, shuffle_b) + "\r\n";
    }
  }

  const auto run = [&](const std::string& wire, std::size_t max_chunk) {
    cache::CacheServer server(small_cache());
    cache::TextProtocolSession session(server);
    std::string out;
    Rng chunk_rng(seed ^ max_chunk);
    std::size_t pos = 0;
    while (pos < wire.size()) {
      const std::size_t n = std::min<std::size_t>(
          wire.size() - pos, 1 + chunk_rng.next_below(max_chunk));
      out += session.feed(std::string_view(wire).substr(pos, n), 0);
      pos += n;
    }
    return out;
  };

  const std::string out_a = run(script_a, script_a.size());
  EXPECT_EQ(out_a, run(script_b, script_b.size()));
  EXPECT_EQ(out_a, run(script_a, 1));  // and ordering survives segmentation
  EXPECT_EQ(out_a, run(script_a, 7));

  // Scan the reply stream: every echoed checksum must be the CRC of the
  // value the model holds for that key. Payloads are lowercase-only, so
  // "VALUE " can never appear inside one.
  int echoes = 0;
  std::size_t pos = 0;
  while ((pos = out_a.find("VALUE ", pos)) != std::string::npos) {
    const std::size_t eol = out_a.find("\r\n", pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = out_a.substr(pos, eol - pos);
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start < line.size()) {
      const std::size_t space = line.find(' ', start);
      const std::size_t end = space == std::string::npos ? line.size() : space;
      parts.push_back(line.substr(start, end - start));
      start = end + 1;
    }
    ASSERT_GE(parts.size(), 4u) << line;
    if (parts.size() == 5) {
      ++echoes;
      const auto it = model.find(parts[1]);
      ASSERT_NE(it, model.end()) << line;
      EXPECT_EQ(parts[4], obs::encode_checksum_token(crc32c(it->second)))
          << line;
    }
    pos = eol + 2;
  }
  EXPECT_GT(echoes, 0) << "fuzz script must exercise the checksum echo";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaTokenOrderFuzz,
                         ::testing::Values(11ull, 2024ull, 777777ull));

}  // namespace
}  // namespace proteus
