// The live power-proportionality auditor and SLO burn-rate engine:
// energy accounting against hand-computed schedules, PPI on an ideally
// proportional fleet, model-drift detection (Theorem 1 share, Eq. 5
// false-negative bound) with kModelDrift trace events, burn-rate state
// transitions, the daemon's /health answer flipping 503 and recovering,
// exemplar survival across merges, and thread-safety of the roll-up paths
// (run under TSan via scripts/check.sh thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bloom/config.h"
#include "client/memcache_client.h"
#include "core/proteus.h"
#include "net/memcache_daemon.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace proteus::obs {
namespace {

// --- energy accounting -------------------------------------------------------

TEST(EnergyAccount, MatchesHandComputedSchedule) {
  AuditConfig cfg;
  cfg.peak_ops_per_server = 1000.0;  // 1000 gets/s saturates a server
  cfg.window = kHour;                // keep window rolls out of this test
  PowerAuditor auditor(cfg);

  // t=0: server 0 active, server 1 powered off. First observe only primes.
  std::vector<ServerAuditSample> fleet(2);
  fleet[0] = {/*power_state=*/0, /*gets=*/0, /*hits=*/0};
  fleet[1] = {/*power_state=*/2, /*gets=*/0, /*hits=*/0};
  auditor.observe(0, fleet);

  // 10 s later server 0 has served 5000 gets: 500 ops/s = 50% utilization.
  // Default profile: 55 + (110-55)*0.5 = 82.5 W; the off server draws 5 W.
  fleet[0].gets_total = 5000;
  fleet[0].hits_total = 4000;
  auditor.observe(10 * kSecond, fleet);

  const AuditSnapshot s = auditor.snapshot();
  EXPECT_NEAR(s.server_joules[0], 82.5 * 10, 1e-6);
  EXPECT_NEAR(s.server_joules[1], 5.0 * 10, 1e-6);
  EXPECT_NEAR(s.fleet_joules, 875.0, 1e-6);
  EXPECT_NEAR(s.fleet_watts, 87.5, 1e-6);
  // Ideal load-proportional fleet: 500 ops/s over 2x1000 capacity = 0.25
  // load fraction, 0.25 * 2 * 110 W = 55 W for 10 s = 550 J.
  EXPECT_NEAR(s.load_fraction, 0.25, 1e-9);
  EXPECT_NEAR(s.ideal_joules, 550.0, 1e-6);
  EXPECT_NEAR(s.ppi, 875.0 / 550.0, 1e-9);

  // A second interval accumulates on top: 10 more seconds fully idle
  // (no new gets) adds 55 + 5 = 60 W x 10 s actual, 0 ideal.
  auditor.observe(20 * kSecond, fleet);
  const AuditSnapshot s2 = auditor.snapshot();
  EXPECT_NEAR(s2.fleet_joules, 875.0 + 600.0, 1e-6);
  EXPECT_NEAR(s2.ideal_joules, 550.0, 1e-6);
}

TEST(EnergyAccount, ProportionalFleetHoldsPpiAtOne) {
  // A hypothetical perfectly proportional server (no standby or idle draw:
  // watts = utilization x peak) makes actual == ideal by construction, so
  // PPI must sit at exactly 1.0 — the Fig. 10 "power-proportional" floor.
  AuditConfig cfg;
  cfg.power.off_watts = 0;
  cfg.power.idle_watts = 0;
  cfg.power.peak_watts = 100;
  cfg.peak_ops_per_server = 1000.0;
  cfg.window = 10 * kSecond;
  PowerAuditor auditor(cfg);

  std::vector<ServerAuditSample> fleet(3);
  auditor.observe(0, fleet);
  for (int step = 1; step <= 6; ++step) {
    // Evenly balanced load, 300 ops/s per server.
    for (auto& s : fleet) {
      s.gets_total += 300.0 * 5;
      s.hits_total += 250.0 * 5;
    }
    auditor.observe(step * 5 * kSecond, fleet);
  }
  const AuditSnapshot s = auditor.snapshot();
  EXPECT_GT(s.fleet_joules, 0.0);
  EXPECT_NEAR(s.ppi, 1.0, 1e-9);
  EXPECT_GT(s.windows, 0u);
  EXPECT_NEAR(s.window_ppi, 1.0, 1e-9);
  // Balanced shares: no drift events, share drift within tolerance.
  EXPECT_EQ(s.drift_events, 0u);
  EXPECT_NEAR(s.share_drift, 0.0, 1e-9);
}

TEST(EnergyAccount, AgreesWithSimulatorMeterOnSameSchedule) {
  // The acceptance cross-check: the live account and the simulator's
  // Fig. 10 instrument (cluster::EnergyMeter, 15 s PDU-style samples) must
  // agree on the same provisioning schedule — the live PPI within 5% of
  // the simulator's actual/ideal energy ratio. Both consume the same §V-A
  // analytic model, so on piecewise-constant load they in fact agree to
  // float precision; the 5% bound is the documented contract.
  const cluster::ServerPowerProfile profile;  // 5 / 55 / 110 W defaults
  constexpr double kPeakOps = 1000.0;
  constexpr SimTime kStep = 15 * kSecond;
  constexpr int kServers = 3;

  AuditConfig cfg;
  cfg.power = profile;
  cfg.peak_ops_per_server = kPeakOps;
  cfg.window = kHour;
  PowerAuditor auditor(cfg);
  cluster::EnergyMeter meter(kStep);

  // A diurnal day in miniature, one entry per 15 s step: full fleet at the
  // peak, shrink through the valley, grow back — the Fig. 10 shape.
  struct Step {
    int powered;
    double util;  // per powered server
  };
  std::vector<Step> schedule;
  for (int i = 0; i < 40; ++i) schedule.push_back({3, 0.9});
  for (int i = 0; i < 40; ++i) schedule.push_back({2, 0.7});
  for (int i = 0; i < 60; ++i) schedule.push_back({1, 0.6});
  for (int i = 0; i < 40; ++i) schedule.push_back({2, 0.8});
  for (int i = 0; i < 60; ++i) schedule.push_back({3, 1.0});

  std::vector<ServerAuditSample> fleet(kServers);
  SimTime now = kSecond;
  auditor.observe(now, fleet);  // prime the counter baseline

  double ideal_sim = 0;  // the ideal load-proportional fleet, sim-side
  for (const Step& step : schedule) {
    double watts = 0;
    for (int i = 0; i < kServers; ++i) {
      watts += profile.watts(i < step.powered, step.util);
    }
    meter.record_sample(now, watts);
    ideal_sim +=
        step.powered * step.util * profile.peak_watts * to_seconds(kStep);

    // The live side sees the identical step as counter deltas.
    now += kStep;
    for (int i = 0; i < kServers; ++i) {
      fleet[i].power_state = i < step.powered ? 0 : 2;
      if (i < step.powered) {
        fleet[i].gets_total += step.util * kPeakOps * to_seconds(kStep);
        fleet[i].hits_total = fleet[i].gets_total;
      }
    }
    auditor.observe(now, fleet);
  }

  const AuditSnapshot live = auditor.snapshot();
  const double sim_joules = meter.total_energy_joules();
  const double sim_ratio = sim_joules / ideal_sim;
  ASSERT_GT(sim_joules, 0.0);
  ASSERT_GT(live.ideal_joules, 0.0);
  EXPECT_NEAR(live.fleet_joules / sim_joules, 1.0, 0.05);
  EXPECT_NEAR(live.ppi / sim_ratio, 1.0, 0.05);
  // And tighter than the contract: same model, same schedule, same sums.
  EXPECT_NEAR(live.fleet_joules / sim_joules, 1.0, 1e-9);
  EXPECT_NEAR(live.ppi / sim_ratio, 1.0, 1e-9);
  // A real (non-proportional) fleet burns more than the ideal one.
  EXPECT_GT(live.ppi, 1.0);
}

// --- model drift -------------------------------------------------------------

TEST(ModelDrift, ShareImbalanceBeyondToleranceEmitsTraceEvent) {
  TraceRing ring(64);
  AuditConfig cfg;
  cfg.peak_ops_per_server = 10000.0;
  cfg.window = 10 * kSecond;
  cfg.share_tolerance = 0.25;
  cfg.trace = &ring;
  PowerAuditor auditor(cfg);

  // Two active servers, 90/10 split: worst share drift is
  // 0.9 x 2 - 1 = +0.8, far past the 0.25 tolerance.
  std::vector<ServerAuditSample> fleet(2);
  auditor.observe(0, fleet);
  fleet[0].gets_total = 900;
  fleet[1].gets_total = 100;
  auditor.observe(5 * kSecond, fleet);
  fleet[0].gets_total = 1800;
  fleet[1].gets_total = 200;
  auditor.observe(11 * kSecond, fleet);  // rolls the 10 s window

  const AuditSnapshot s = auditor.snapshot();
  EXPECT_EQ(s.windows, 1u);
  EXPECT_NEAR(s.share_drift, 0.8, 1e-9);
  EXPECT_GE(s.drift_events, 1u);

  bool traced = false;
  for (const TraceEvent& e : ring.snapshot()) {
    if (e.kind != TraceEventKind::kModelDrift) continue;
    traced = true;
    EXPECT_EQ(e.key, "share");
    EXPECT_EQ(e.peer, 1);  // over, not under
    // n carries |drift| in ppm.
    EXPECT_NEAR(static_cast<double>(e.n) / 1e6, 0.8, 1e-3);
  }
  EXPECT_TRUE(traced);
}

TEST(ModelDrift, FalseNegativeDriftSignAndMagnitude) {
  AuditConfig cfg;
  cfg.window = 10 * kSecond;
  cfg.fn_bound = 0.01;  // analytic Eq. 5 bound the fleet claims to meet
  PowerAuditor auditor(cfg);

  std::vector<ServerAuditSample> fleet(1);
  auditor.observe(0, fleet, /*fn_total=*/0, /*fn_opportunities=*/0);
  fleet[0].gets_total = 1000;
  // 50 observed false negatives over 100 digest-checked lookups: a 0.5
  // observed rate against the 0.01 bound -> drift +0.49, bound VIOLATED.
  auditor.observe(11 * kSecond, fleet, /*fn_total=*/50,
                  /*fn_opportunities=*/100);
  const AuditSnapshot s = auditor.snapshot();
  EXPECT_NEAR(s.fn_drift, 0.5 - 0.01, 1e-9);
  EXPECT_GE(s.drift_events, 1u);
}

TEST(ModelDrift, WrappingDigestViolatesEq5BoundThroughFacade) {
  // End to end through the Proteus facade: the paper's wrapping 1-bit
  // counters (Eq. 5 / Fig. 8) produce genuine false negatives during a
  // shrink; the auditor fed by tick() must see the observed FN rate exceed
  // a tight analytic bound and flag positive drift.
  TraceRing ring(1 << 12);
  AuditConfig acfg;
  acfg.window = 5 * kSecond;
  acfg.fn_bound = 1e-9;  // a bound this digest geometry cannot hold
  acfg.hit_ratio_tolerance = 10.0;  // quiet the other gauges for this test
  acfg.share_tolerance = 10.0;
  acfg.trace = &ring;
  PowerAuditor auditor(acfg);

  ProteusOptions opt;
  opt.max_servers = 2;
  opt.ttl = 100 * kSecond;
  opt.per_server.memory_budget_bytes = 16 << 20;
  opt.per_server.auto_size_digest = false;
  opt.per_server.digest.num_counters = 128;
  opt.per_server.digest.counter_bits = 1;
  opt.per_server.digest.num_hashes = 1;
  opt.per_server.digest_policy = bloom::OverflowPolicy::kWrap;
  opt.auditor = &auditor;
  Proteus cluster(opt, [](std::string_view key) {
    return "v-" + std::string(key);
  });

  SimTime now = kSecond;
  cluster.tick(now);  // primes the auditor baseline
  for (int i = 0; i < 400; ++i) {
    cluster.put("k:" + std::to_string(i), "x", now);
  }
  cluster.resize(1, now);
  for (int i = 0; i < 400; ++i) {
    cluster.get("k:" + std::to_string(i), now);
  }
  ASSERT_GT(cluster.stats().digest_false_negatives, 0u);

  now += 2 * kSecond;
  cluster.tick(now);  // feeds counters
  now += acfg.window + kSecond;
  cluster.tick(now);  // rolls the window

  const AuditSnapshot s = auditor.snapshot();
  EXPECT_GT(s.fn_drift, 0.0);  // positive = bound violated
  bool traced = false;
  for (const TraceEvent& e : ring.snapshot()) {
    if (e.kind == TraceEventKind::kModelDrift && e.key == "fn_bound") {
      traced = true;
      EXPECT_EQ(e.peer, 1);
    }
  }
  EXPECT_TRUE(traced);
}

// --- SLO burn rates ----------------------------------------------------------

TEST(BurnRate, TrackerStateTransitions) {
  SloWindows w;  // fast 60 s, slow 10 min, warn 2x, page 10x
  BurnRateTracker ok_tracker(0.9, w);
  ok_tracker.record(kSecond, /*good=*/100, /*bad=*/1);
  EXPECT_EQ(ok_tracker.state(kSecond), SloState::kOk);

  // Mixed traffic: 100 bad out of 200 = 50% errors against a 10% budget ->
  // burn 5x on the fast window: warn, but the page bar (10x) is not met.
  BurnRateTracker warn_tracker(0.9, w);
  warn_tracker.record(kSecond, 100, 0);
  warn_tracker.record(2 * kSecond, 0, 100);
  EXPECT_NEAR(warn_tracker.burn(2 * kSecond, w.fast_window), 5.0, 1e-9);
  EXPECT_EQ(warn_tracker.state(2 * kSecond), SloState::kWarn);

  // Total failure from the start: burn = 10x on both windows -> page;
  // then a full fast window of clean traffic drains the fast burn to zero
  // and the state recovers all the way to ok (slow window still remembers,
  // but paging requires BOTH windows hot).
  BurnRateTracker page_tracker(0.9, w);
  page_tracker.record(kSecond, 0, 100);
  EXPECT_NEAR(page_tracker.burn(kSecond, w.fast_window), 10.0, 1e-9);
  EXPECT_EQ(page_tracker.state(kSecond), SloState::kPage);
  const SimTime later = kSecond + w.fast_window + 5 * kSecond;
  page_tracker.record(later, 1000, 0);
  EXPECT_EQ(page_tracker.state(later), SloState::kOk);
}

TEST(BurnRate, EngineTracksAllThreeObjectives) {
  SloConfig cfg;
  cfg.hit_ratio_target = 0.9;
  cfg.p999_target_us = 5000;
  cfg.power_budget_watts = 200;
  SloEngine engine(cfg);
  ASSERT_TRUE(engine.enabled());

  // Everything healthy: hits at 99%, p99.9 and watts under their bounds.
  engine.observe(kSecond, /*gets=*/100, /*hits=*/99, /*p999_us=*/1000,
                 /*watts=*/120);
  EXPECT_EQ(engine.overall(kSecond), SloState::kOk);
  auto status = engine.status(kSecond);
  ASSERT_EQ(status.size(), 3u);
  EXPECT_EQ(status[0].name, "hit_ratio");
  EXPECT_EQ(status[1].name, "p999_latency");
  EXPECT_EQ(status[2].name, "power_budget");

  // Latency blows through the bound every window: each roll-up is one bad
  // window against a 10% window budget -> burn 10x -> page, while the other
  // objectives stay ok.
  SloConfig lat;
  lat.p999_target_us = 5000;
  SloEngine lat_engine(lat);
  lat_engine.observe(kSecond, 100, 100, /*p999_us=*/50000, /*watts=*/0);
  lat_engine.observe(2 * kSecond, 100, 100, /*p999_us=*/60000, /*watts=*/0);
  EXPECT_EQ(lat_engine.overall(2 * kSecond), SloState::kPage);
  status = lat_engine.status(2 * kSecond);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].name, "p999_latency");
  EXPECT_EQ(status[0].state, SloState::kPage);
  EXPECT_NEAR(status[0].observed, 60000.0, 1e-9);

  // Recovery: a fast window of in-bound latency windows drains the burn.
  const SimTime later = 2 * kSecond + lat.windows.fast_window + 5 * kSecond;
  lat_engine.observe(later, 100, 100, /*p999_us=*/1000, /*watts=*/0);
  EXPECT_EQ(lat_engine.overall(later), SloState::kOk);
}

TEST(BurnRate, RenderHealthContract) {
  SloEngine::Status ok{"hit_ratio", SloState::kOk, 0.9, 0.99, 0.1, 0.1};
  auto [code, body] = render_health({ok}, "\"epoch\":3");
  EXPECT_EQ(code, 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(body.find("\"hit_ratio\""), std::string::npos);

  SloEngine::Status paging{"power_budget", SloState::kPage, 200, 280, 12, 11};
  auto [code2, body2] = render_health({ok, paging}, "");
  EXPECT_EQ(code2, 503);
  EXPECT_NE(body2.find("\"status\":\"unhealthy\""), std::string::npos);
  EXPECT_NE(body2.find("\"power_budget\""), std::string::npos);
  EXPECT_NE(body2.find("\"page\""), std::string::npos);
}

// --- the daemon's /health surface, end to end --------------------------------

TEST(DaemonHealth, FlipsTo503UnderBreachAndRecovers) {
  // Fake clock so SLO windows move at test speed, not wall-clock speed.
  static std::atomic<SimTime> fake_now{kSecond};
  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 4 << 20;
  net::AuditOptions audit;
  audit.enabled = true;
  audit.slo.hit_ratio_target = 0.9;
  net::MemcacheDaemon daemon(cfg, 0, [] { return fake_now.load(); }, 1,
                             net::TcpServer::Limits{}, net::AdmissionOptions{},
                             audit);
  ASSERT_TRUE(daemon.ok());
  std::thread runner([&daemon] { daemon.run(); });
  {
    client::MemcacheConnection conn(daemon.port());
    ASSERT_TRUE(conn.ok());

    // Prime the audit baseline before any traffic.
    auto [code0, body0] = daemon.health();
    EXPECT_EQ(code0, 200);

    // Total miss storm: every get in the first observed interval misses, so
    // the hit-ratio burn hits the 10x page bar on both windows -> 503.
    for (int i = 0; i < 100; ++i) {
      (void)conn.get("absent:" + std::to_string(i));
    }
    fake_now += 2 * kSecond;
    auto [code1, body1] = daemon.health();
    EXPECT_EQ(code1, 503);
    EXPECT_NE(body1.find("\"status\":\"unhealthy\""), std::string::npos);
    EXPECT_NE(body1.find("\"hit_ratio\""), std::string::npos);
    EXPECT_NE(body1.find("\"epoch\""), std::string::npos);
    EXPECT_NE(body1.find("\"ppi\""), std::string::npos);

    // Recovery: a fast window's worth of clean hits drains the burn.
    ASSERT_TRUE(conn.set("k", "v"));
    fake_now += audit.slo.windows.fast_window + 5 * kSecond;
    for (int i = 0; i < 1000; ++i) (void)conn.get("k");
    fake_now += 2 * kSecond;
    auto [code2, body2] = daemon.health();
    EXPECT_EQ(code2, 200);
    EXPECT_NE(body2.find("\"status\":\"ok\""), std::string::npos);

    // The audit gauges surfaced on /metrics as well.
    const std::string metrics = daemon.metrics_text();
    EXPECT_NE(metrics.find("proteus_audit_ppi"), std::string::npos);
    EXPECT_NE(metrics.find("proteus_slo_hit_ratio_state"), std::string::npos);
  }
  daemon.stop();
  runner.join();
}

// --- exemplars ---------------------------------------------------------------

TEST(Exemplars, SurviveMergeAndPreferNewer) {
  ExemplarSet a;
  ExemplarSet b;
  a.offer(100.0, 0xdead);   // older seq
  b.offer(100.0, 0xbeef);   // same bucket, newer seq
  b.offer(100000.0, 0xf00); // a bucket a lacks
  a.merge(b);
  const Exemplar* same_bucket = a.nearest(100.0);
  ASSERT_NE(same_bucket, nullptr);
  EXPECT_EQ(same_bucket->trace_id, 0xbeefu);
  const Exemplar* other_bucket = a.nearest(100000.0);
  ASSERT_NE(other_bucket, nullptr);
  EXPECT_EQ(other_bucket->trace_id, 0xf00u);

  // Merging an empty set changes nothing.
  a.merge(ExemplarSet{});
  EXPECT_EQ(a.nearest(100.0)->trace_id, 0xbeefu);
}

TEST(Exemplars, RenderedAsOpenMetricsOnQuantiles) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("demo_latency_us", "demo");
  for (int i = 0; i < 100; ++i) h->record(100.0 + i);
  h->record(5000.0, /*trace_id=*/0xabcdef12u);
  const std::string text = render_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# {trace_id=\"00000000abcdef12\"}"),
            std::string::npos);
}

// --- reset baselines (the `stats reset` hook) --------------------------------

TEST(ResetDropped, TraceRingBaselineSurvivesReset) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    emit(&ring, i, TraceEventKind::kTtlExpiry, 0, -1, 1);
  }
  EXPECT_EQ(ring.dropped(), 6u);
  ring.reset_dropped();
  EXPECT_EQ(ring.dropped(), 0u);
  for (int i = 0; i < 3; ++i) {
    emit(&ring, i, TraceEventKind::kTtlExpiry, 0, -1, 1);
  }
  EXPECT_EQ(ring.dropped(), 3u);  // counts only post-reset overwrites
  EXPECT_EQ(ring.total_emitted(), 13u);  // sequence numbers untouched
}

// --- thread safety (meaningful under TSan) -----------------------------------

TEST(AuditThreads, ConcurrentObserveSnapshotAndGauges) {
  AuditConfig cfg;
  cfg.window = 2 * kSecond;
  PowerAuditor auditor(cfg);
  SloConfig scfg;
  scfg.hit_ratio_target = 0.9;
  SloEngine slo(scfg);
  MetricsRegistry registry;
  auditor.register_metrics(registry);
  static std::atomic<SimTime> now{0};
  slo.register_metrics(registry, [] { return now.load(); });

  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    std::vector<ServerAuditSample> fleet(3);
    while (!stop.load(std::memory_order_relaxed)) {
      const SimTime t = now.fetch_add(kSecond) + kSecond;
      for (auto& s : fleet) {
        s.gets_total += 100;
        s.hits_total += 90;
      }
      auditor.observe(t, fleet, 1, 100);
      slo.observe(t, 100, 90, 1000, 100);
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)auditor.snapshot();
      (void)slo.status(now.load());
      (void)slo.overall(now.load());
      (void)render_prometheus(registry.snapshot());
      (void)render_health(slo.status(now.load()), "");
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  feeder.join();
  reader.join();

  const AuditSnapshot s = auditor.snapshot();
  EXPECT_GT(s.fleet_joules, 0.0);
  EXPECT_GT(s.windows, 0u);
}

}  // namespace
}  // namespace proteus::obs
