#include "cluster/provisioning.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace proteus::cluster {
namespace {

TEST(RateProportionalPolicy, CeilsAndClamps) {
  RateProportionalPolicy policy{100.0, 2, 10};
  EXPECT_EQ(policy.decide(0.0), 2);      // clamped to min
  EXPECT_EQ(policy.decide(150.0), 2);
  EXPECT_EQ(policy.decide(201.0), 3);    // ceil
  EXPECT_EQ(policy.decide(300.0), 3);
  EXPECT_EQ(policy.decide(5000.0), 10);  // clamped to max
}

TEST(RateProportionalSchedule, TracksDiurnalShape) {
  workload::DiurnalConfig dc;
  dc.mean_rate = 400;
  dc.amplitude = 1.0 / 3.0;
  dc.period = 24 * kHour;
  dc.phase = 9 * kHour;
  dc.jitter = 0;
  workload::DiurnalModel model(dc);

  RateProportionalPolicy policy{57.0, 1, 10};
  const auto schedule =
      rate_proportional_schedule(model, 33 * kHour, kHour, policy);
  ASSERT_EQ(schedule.size(), 33u);

  const int lo = *std::min_element(schedule.begin(), schedule.end());
  const int hi = *std::max_element(schedule.begin(), schedule.end());
  EXPECT_LE(hi, 10);
  EXPECT_GE(lo, 1);
  EXPECT_GE(hi - lo, 3) << "schedule should swing with the diurnal load";

  // The schedule must actually cover the offered load in every slot.
  for (std::size_t s = 0; s < schedule.size(); ++s) {
    const double rate =
        model.rate_at(static_cast<SimTime>(s) * kHour + kHour / 2);
    EXPECT_GE(schedule[s] * policy.per_server_capacity_rps, rate);
  }
}

TEST(RateProportionalSchedule, RoundsPartialSlotsUp) {
  workload::DiurnalConfig dc;
  dc.jitter = 0;
  workload::DiurnalModel model(dc);
  const auto schedule = rate_proportional_schedule(
      model, kHour + kMinute, kHour, RateProportionalPolicy{});
  EXPECT_EQ(schedule.size(), 2u);
}

TEST(DelayFeedbackPolicy, GrowsWhenBoundViolated) {
  DelayFeedbackPolicy policy({}, 5);
  EXPECT_EQ(policy.update(from_seconds(0.6)), 6);  // > 0.5 s bound
  EXPECT_EQ(policy.update(from_seconds(2.0)), 7);
  EXPECT_EQ(policy.current(), 7);
}

TEST(DelayFeedbackPolicy, ShrinksWhenComfortablyUnderReference) {
  DelayFeedbackPolicy policy({}, 5);
  EXPECT_EQ(policy.update(from_seconds(0.05)), 4);  // < reference/2
  EXPECT_EQ(policy.update(from_seconds(0.01)), 3);
}

TEST(DelayFeedbackPolicy, HoldsInsideDeadband) {
  DelayFeedbackPolicy policy({}, 5);
  EXPECT_EQ(policy.update(from_seconds(0.3)), 5);  // between ref/2 and bound
  EXPECT_EQ(policy.update(from_seconds(0.45)), 5);
}

// Synthetic plant for closed-loop tests: delay scales with the per-server
// load, i.e. p99.9 = reference * servers_needed / n (so n == servers_needed
// sits exactly at the setpoint — a smooth M/M/n-flavoured abstraction).
SimTime plant_p999(int n, int servers_needed) {
  return from_seconds(0.4 * static_cast<double>(servers_needed) /
                      static_cast<double>(std::max(1, n)));
}

TEST(PiDelayFeedbackPolicy, ConvergesOnSyntheticPlant) {
  PiDelayFeedbackPolicy::Config cfg;
  cfg.max_servers = 10;
  PiDelayFeedbackPolicy policy(cfg, 2);
  int n = 2;
  // Load requires 7 servers; the loop must climb there and settle.
  for (int slot = 0; slot < 30; ++slot) {
    n = policy.update(plant_p999(n, 7));
  }
  EXPECT_GE(n, 6);
  EXPECT_LE(n, 8);
  // Load drops to 3 servers; the loop must release the excess.
  for (int slot = 0; slot < 40; ++slot) {
    n = policy.update(plant_p999(n, 3));
  }
  EXPECT_GE(n, 2);
  EXPECT_LE(n, 4);
}

TEST(PiDelayFeedbackPolicy, ReactsFasterThanStepPolicyOnLargeRamps) {
  // A big fleet hit by a large ramp (2 -> ~26 servers needed to meet the
  // 0.5 s bound): the one-server-per-slot policy lags by the deficit; the
  // PI policy takes multi-server steps while the error is saturated.
  constexpr int kNeeded = 32;
  // Gains are per unit of normalized error, so a 40-server fleet warrants
  // proportionally larger integral action and a wider error band than the
  // 10-server defaults.
  PiDelayFeedbackPolicy::Config pi_cfg;
  pi_cfg.max_servers = 40;
  pi_cfg.kp = 0.5;
  pi_cfg.ki = 2.5;
  pi_cfg.error_clip = 2.0;
  DelayFeedbackPolicy::Config step_cfg;
  step_cfg.max_servers = 40;
  PiDelayFeedbackPolicy pi(pi_cfg, 2);
  DelayFeedbackPolicy step(step_cfg, 2);

  int pi_slots = 0, step_slots = 0;
  for (int n = 2; plant_p999(n, kNeeded) > from_seconds(0.5) && pi_slots < 100;
       ++pi_slots) {
    n = pi.update(plant_p999(n, kNeeded));
  }
  for (int n = 2;
       plant_p999(n, kNeeded) > from_seconds(0.5) && step_slots < 100;
       ++step_slots) {
    n = step.update(plant_p999(n, kNeeded));
  }
  EXPECT_LT(pi_slots, step_slots / 2)
      << "pi=" << pi_slots << " step=" << step_slots;
  EXPECT_GE(step_slots, 20);  // the step policy adds one server per slot
}

TEST(PiDelayFeedbackPolicy, ErrorClipBoundsTheStep) {
  PiDelayFeedbackPolicy::Config cfg;
  cfg.kp = 3.0;
  cfg.ki = 1.5;
  cfg.error_clip = 2.0;
  PiDelayFeedbackPolicy policy(cfg, 2);
  // A catastrophic observation (1000x reference) is clipped: the first
  // step is bounded by kp*clip + ki*clip.
  const int n = policy.update(from_seconds(400.0));
  EXPECT_LE(n, 2 + static_cast<int>(std::lround((3.0 + 1.5) * 2.0)));
  EXPECT_GT(n, 2);
}

TEST(PiDelayFeedbackPolicy, NoWindupAtSaturation) {
  PiDelayFeedbackPolicy::Config cfg;
  cfg.max_servers = 5;
  PiDelayFeedbackPolicy policy(cfg, 5);
  // Sustained overload while already at max: stay pinned...
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.update(from_seconds(5.0)), 5);
  }
  // ...and release promptly when the load vanishes (no accumulated debt).
  int n = 5;
  int slots_to_release = 0;
  while (n > 1 && slots_to_release < 20) {
    n = policy.update(from_seconds(0.01));
    ++slots_to_release;
  }
  EXPECT_LE(slots_to_release, 6) << "integrator wound up at saturation";
}

TEST(PiDelayFeedbackPolicy, SteadyStateAtReferenceHolds) {
  PiDelayFeedbackPolicy policy({}, 5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.update(from_seconds(0.4)), 5);  // error == 0
  }
}

TEST(DelayFeedbackPolicy, RespectsServerLimits) {
  DelayFeedbackPolicy::Config cfg;
  cfg.min_servers = 2;
  cfg.max_servers = 4;
  DelayFeedbackPolicy policy(cfg, 3);
  policy.update(from_seconds(1.0));
  policy.update(from_seconds(1.0));
  policy.update(from_seconds(1.0));
  EXPECT_EQ(policy.current(), 4);
  for (int i = 0; i < 5; ++i) policy.update(from_seconds(0.01));
  EXPECT_EQ(policy.current(), 2);
}

}  // namespace
}  // namespace proteus::cluster
