#include "workload/wiki_trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace proteus::workload {
namespace {

TEST(PercentDecode, BasicEscapes) {
  EXPECT_EQ(percent_decode("Main%20Page"), "Main Page");
  EXPECT_EQ(percent_decode("C%2B%2B"), "C++");
  EXPECT_EQ(percent_decode("no-escapes"), "no-escapes");
  EXPECT_EQ(percent_decode("%41%42%43"), "ABC");
}

TEST(PercentDecode, InvalidEscapesKeptLiterally) {
  EXPECT_EQ(percent_decode("100%"), "100%");
  EXPECT_EQ(percent_decode("50%ZZoff"), "50%ZZoff");
  EXPECT_EQ(percent_decode("%4"), "%4");
}

TEST(WikiArticleTitle, AcceptsEnglishArticles) {
  EXPECT_EQ(wiki_article_title("http://en.wikipedia.org/wiki/Main_Page"),
            "Main_Page");
  EXPECT_EQ(wiki_article_title("https://en.wikipedia.org/wiki/C%2B%2B"),
            "C++");
  // Spaces normalize to underscores (MediaWiki canonical form).
  EXPECT_EQ(wiki_article_title("http://en.wikipedia.org/wiki/Main%20Page"),
            "Main_Page");
}

TEST(WikiArticleTitle, StripsQueryAndFragment) {
  EXPECT_EQ(
      wiki_article_title("http://en.wikipedia.org/wiki/Physics?action=raw"),
      "Physics");
  EXPECT_EQ(wiki_article_title("http://en.wikipedia.org/wiki/Physics#History"),
            "Physics");
}

TEST(WikiArticleTitle, RejectsOtherProjectsAndLanguages) {
  EXPECT_FALSE(wiki_article_title("http://de.wikipedia.org/wiki/Physik"));
  EXPECT_FALSE(wiki_article_title("http://commons.wikimedia.org/wiki/X"));
  EXPECT_FALSE(wiki_article_title("http://en.wikipedia.org/w/index.php"));
  EXPECT_FALSE(wiki_article_title("ftp://en.wikipedia.org/wiki/X"));
  EXPECT_FALSE(wiki_article_title("garbage"));
}

TEST(WikiArticleTitle, RejectsNonArticleNamespaces) {
  EXPECT_FALSE(
      wiki_article_title("http://en.wikipedia.org/wiki/Special:Random"));
  EXPECT_FALSE(
      wiki_article_title("http://en.wikipedia.org/wiki/File:Cat.jpg"));
  EXPECT_FALSE(
      wiki_article_title("http://en.wikipedia.org/wiki/Talk:Physics"));
  EXPECT_FALSE(
      wiki_article_title("http://en.wikipedia.org/wiki/User:Someone"));
  EXPECT_FALSE(wiki_article_title("http://en.wikipedia.org/wiki/"));
}

TEST(ReadWikipediaTrace, DistillsAndRebasesTimestamps) {
  std::stringstream in;
  in << "1190146243.324 http://en.wikipedia.org/wiki/Main_Page\n"
     << "1190146243.824 http://de.wikipedia.org/wiki/Physik\n"
     << "1190146244.324 http://en.wikipedia.org/wiki/Physics\n"
     << "1190146244.824 http://en.wikipedia.org/wiki/File:Cat.jpg\n"
     << "1190146245.324 http://en.wikipedia.org/wiki/Main%20Page\n";
  WikiTraceStats stats;
  const auto trace = read_wikipedia_trace(in, &stats);

  EXPECT_EQ(stats.lines, 5u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.malformed, 0u);

  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].time, 0);
  EXPECT_EQ(trace[0].key, "page:Main_Page");
  EXPECT_EQ(trace[1].time, kSecond);
  EXPECT_EQ(trace[1].key, "page:Physics");
  EXPECT_EQ(trace[2].time, 2 * kSecond);
  EXPECT_EQ(trace[2].key, "page:Main_Page");  // %20 normalized to _
}

TEST(ReadWikipediaTrace, CountsMalformedLines) {
  std::stringstream in;
  in << "notanumber http://en.wikipedia.org/wiki/X\n"
     << "1190146243.324\n"
     << "1190146243.5 http://en.wikipedia.org/wiki/Y\n";
  WikiTraceStats stats;
  const auto trace = read_wikipedia_trace(in, &stats);
  EXPECT_EQ(stats.malformed, 2u);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].key, "page:Y");
}

TEST(ReadWikipediaTrace, ToleratesMinorReordering) {
  std::stringstream in;
  in << "100.5 http://en.wikipedia.org/wiki/B\n"
     << "100.2 http://en.wikipedia.org/wiki/A\n";
  const auto trace = read_wikipedia_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_LE(trace[0].time, trace[1].time);
}

TEST(ReadWikipediaTrace, OutputFeedsStandardTraceConsumers) {
  std::stringstream in;
  for (int i = 0; i < 100; ++i) {
    in << 1000.0 + i * 0.1 << " http://en.wikipedia.org/wiki/Page_"
       << (i % 10) << "\n";
  }
  const auto trace = read_wikipedia_trace(in);
  ASSERT_EQ(trace.size(), 100u);
  const auto windows = requests_per_window(trace, kSecond);
  std::uint64_t total = 0;
  for (auto c : windows) total += c;
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace proteus::workload
