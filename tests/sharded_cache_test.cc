// Lock-striped sharded cache engine tests (cache/sharded_cache.h):
// routing determinism, per-shard eviction independence, merged-digest
// union semantics (incl. the kWrap false-negative comparison against an
// unsharded server at equal budget), flush / stats-reset fan-out, the
// shard-lock deadline shed path on both protocol handlers, admin-traffic
// exclusion from the data-plane hit ratio, and a multi-thread mixed-op
// drill meant to run under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/binary_protocol.h"
#include "cache/sharded_cache.h"
#include "cache/text_protocol.h"

namespace proteus::cache {
namespace {

CacheConfig small_config() {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 1 << 20;
  return cfg;
}

// First key of the form "<prefix><n>" that routes to `shard`.
std::string key_in_shard(const ShardedCacheServer& engine, std::size_t shard,
                        const std::string& prefix = "k") {
  for (int n = 0;; ++n) {
    std::string key = prefix + std::to_string(n);
    if (engine.shard_index(key) == shard) return key;
  }
}

// --- routing ---------------------------------------------------------------

TEST(ShardedCache, RoutingIsDeterministicAndCoversAllShards) {
  ShardedCacheServer a(small_config(), 4);
  ShardedCacheServer b(small_config(), 4);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::size_t shard = a.shard_index(key);
    ASSERT_LT(shard, 4u);
    // Same key, same shard — across calls and across engine instances.
    EXPECT_EQ(a.shard_index(key), shard);
    EXPECT_EQ(b.shard_index(key), shard);
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 4u);  // 1000 keys cover every shard

  ShardedCacheServer one(small_config(), 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(one.shard_index("key" + std::to_string(i)), 0u);
  }
}

TEST(ShardedCache, DefaultShardsForThreads) {
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(0), 1);
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(1), 1);
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(2), 2);
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(3), 2);
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(4), 4);
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(7), 4);
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(8), 8);
  EXPECT_EQ(ShardedCacheServer::default_shards_for_threads(64), 8);
}

TEST(ShardedCache, BudgetSlicesSumToConfiguredBudget) {
  CacheConfig cfg;
  cfg.memory_budget_bytes = (1 << 20) + 3;  // not divisible by 4
  ShardedCacheServer engine(cfg, 4);
  std::size_t total = 0;
  for (int i = 0; i < 4; ++i) {
    total += engine.shard(static_cast<std::size_t>(i)).memory_budget();
  }
  EXPECT_EQ(total, cfg.memory_budget_bytes);
  EXPECT_EQ(engine.memory_budget(), cfg.memory_budget_bytes);
}

// --- per-shard eviction independence ---------------------------------------

TEST(ShardedCache, EvictionOnHotShardsNeverTouchesColdShard) {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 64 << 10;  // 16 KB per shard: easy to overflow
  ShardedCacheServer engine(cfg, 4);

  // One resident key on shard 0, then a Zipf-like hammering of the other
  // shards heavy enough to force evictions there.
  const std::string cold = key_in_shard(engine, 0, "cold");
  engine.set(cold, "v", 0);
  int hammered = 0;
  for (int n = 0; hammered < 2000; ++n) {
    const std::string key = "hot" + std::to_string(n);
    if (engine.shard_index(key) == 0) continue;
    engine.set(key, std::string(64, 'x'), 0);
    ++hammered;
  }

  EXPECT_GT(engine.stats().evictions, 0u);       // the hot shards churned
  EXPECT_EQ(engine.shard_stats(0).evictions, 0u);  // the cold one did not
  EXPECT_TRUE(engine.contains(cold, 0));           // and kept its item
}

// --- merged digest ---------------------------------------------------------

TEST(ShardedCache, MergedDigestIsBitwiseUnionOfShardDigests) {
  ShardedCacheServer engine(small_config(), 4);
  for (int i = 0; i < 200; ++i) {
    engine.set("key" + std::to_string(i), "v", 0);
  }
  const bloom::BloomFilter merged = engine.merged_digest_snapshot();
  std::vector<std::uint64_t> expect(merged.words().size(), 0);
  for (std::size_t s = 0; s < 4; ++s) {
    const bloom::BloomFilter part = engine.shard(s).snapshot_digest();
    ASSERT_EQ(part.words().size(), expect.size());  // identical geometry
    for (std::size_t w = 0; w < expect.size(); ++w) {
      expect[w] |= part.words()[w];
    }
  }
  EXPECT_EQ(merged.words(), expect);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(merged.maybe_contains("key" + std::to_string(i)));
    EXPECT_TRUE(engine.digest_maybe_contains("key" + std::to_string(i)));
  }
}

TEST(ShardedCache, MergedDigestWireBlobMatchesUnshardedServer) {
  // Same config, same key set: the blob an unmodified client fetches via
  // the reserved keys must be byte-identical to the single-cache build.
  CacheServer flat(small_config());
  ShardedCacheServer engine(small_config(), 4);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    flat.set(key, "v", 0);
    engine.set(key, "v", 0);
  }
  ASSERT_EQ(*flat.get(kSetBloomFilterKey, 0), "OK");
  ASSERT_EQ(*engine.get(kSetBloomFilterKey, 0), "OK");
  EXPECT_EQ(*engine.get(kGetBloomFilterKey, 0), *flat.get(kGetBloomFilterKey, 0));
}

TEST(ShardedCache, WrapPolicyFalseNegativesNoWorseThanUnsharded) {
  // Eq. 5 regression: under kWrap each per-shard counter sees only ~1/N of
  // the insert/erase traffic, so at EQUAL digest budget the sharded engine
  // must not produce more false negatives than the unsharded baseline. The
  // geometry is pinned tiny so the unsharded counters wrap a lot.
  CacheConfig cfg = small_config();
  cfg.auto_size_digest = false;
  cfg.digest.num_counters = 64;
  cfg.digest.counter_bits = 2;  // wraps at 4
  cfg.digest.num_hashes = 2;
  cfg.digest_policy = bloom::OverflowPolicy::kWrap;

  CacheServer flat(cfg);
  ShardedCacheServer engine(cfg, 4);
  // Churn: insert 400, erase every other one. Wrapped counters lose
  // increments, so some LIVE keys read as absent — false negatives.
  for (int i = 0; i < 400; ++i) {
    const std::string key = "churn" + std::to_string(i);
    flat.set(key, "v", 0);
    engine.set(key, "v", 0);
  }
  for (int i = 0; i < 400; i += 2) {
    const std::string key = "churn" + std::to_string(i);
    flat.erase(key);
    engine.erase(key);
  }
  int flat_fn = 0;
  int sharded_fn = 0;
  for (int i = 1; i < 400; i += 2) {  // live keys only
    const std::string key = "churn" + std::to_string(i);
    if (!flat.digest().maybe_contains(key)) ++flat_fn;
    if (!engine.digest_maybe_contains(key)) ++sharded_fn;
  }
  EXPECT_GT(flat_fn, 0);  // the baseline actually wrapped — a real test
  EXPECT_LE(sharded_fn, flat_fn);
}

// --- flush / stats-reset fan-out -------------------------------------------

TEST(ShardedCache, FlushEmptiesEveryShardAndDropsStagedDigest) {
  ShardedCacheServer engine(small_config(), 4);
  for (int i = 0; i < 100; ++i) engine.set("key" + std::to_string(i), "v", 0);
  ASSERT_EQ(*engine.get(kSetBloomFilterKey, 0), "OK");  // stage a snapshot
  engine.flush();
  EXPECT_EQ(engine.item_count(), 0u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(engine.shard(s).item_count(), 0u);
  }
  // The staged blob was dropped too: a fresh BLOOM_FILTER pull re-snapshots
  // the (now empty) digest instead of serving the stale pre-flush one.
  EXPECT_FALSE(engine.digest_maybe_contains("key1"));
  EXPECT_EQ(*engine.get(kGetBloomFilterKey, 0),
            *ShardedCacheServer(small_config(), 4).get(kGetBloomFilterKey, 0));
}

TEST(ShardedCache, StatsResetZeroesMergedPerShardAndEngineCounters) {
  ShardedCacheServer engine(small_config(), 4);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key" + std::to_string(i);
    engine.set(key, "v", 0);
    engine.get(key, 0);
  }
  engine.get(kGetBloomFilterKey, 0);   // admin traffic
  engine.admit_epoch(5);
  engine.admit_epoch(3);               // stale: counted
  ASSERT_GT(engine.stats().gets, 0u);
  ASSERT_GT(engine.stats().admin_gets, 0u);
  ASSERT_EQ(engine.stale_epoch_rejects(), 1u);

  engine.reset_stats();
  const CacheStats merged = engine.stats();
  EXPECT_EQ(merged.gets, 0u);
  EXPECT_EQ(merged.sets, 0u);
  EXPECT_EQ(merged.admin_gets, 0u);
  EXPECT_EQ(engine.stale_epoch_rejects(), 0u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(engine.shard_stats(s).gets, 0u);
  }
  EXPECT_EQ(engine.item_count(), 50u);  // reset clears counters, not data
}

// --- epoch fencing (engine-wide) -------------------------------------------

TEST(ShardedCache, EpochFencingIsEngineWideNotPerShard) {
  ShardedCacheServer engine(small_config(), 4);
  EXPECT_TRUE(engine.admit_epoch(0));   // unstamped always passes
  EXPECT_TRUE(engine.admit_epoch(7));
  EXPECT_FALSE(engine.admit_epoch(3));  // stale everywhere, not per shard
  EXPECT_EQ(engine.cluster_epoch(), 7u);
  EXPECT_EQ(engine.stale_epoch_rejects(), 1u);
  engine.observe_epoch(9);
  EXPECT_EQ(engine.cluster_epoch(), 9u);
  engine.observe_epoch(2);              // observe never regresses
  EXPECT_EQ(engine.cluster_epoch(), 9u);
  EXPECT_EQ(*engine.get(std::string(kEpochKey), 0),
            "9 " + std::to_string(engine.incarnation()));
}

// --- admin traffic vs hit ratio (satellite: stats correctness) -------------

TEST(ShardedCache, AdminGetsNeverEnterTheDataPlaneHitRatio) {
  ShardedCacheServer engine(small_config(), 4);
  engine.set("k", "v", 0);
  engine.get("k", 0);      // hit
  engine.get("miss", 0);   // miss
  const double expected = 0.5;
  ASSERT_DOUBLE_EQ(engine.stats().hit_ratio(), expected);

  // A digest broadcast + epoch hello storm (what a §IV transition looks
  // like on the wire) must not move the ratio the audit-drift monitor and
  // the SLO burn rate alarm on.
  for (int i = 0; i < 100; ++i) {
    engine.get(kGetBloomFilterKey, 0);
    engine.get(std::string(kEpochKey), 0);
  }
  const CacheStats s = engine.stats();
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.admin_gets, 200u);
  EXPECT_DOUBLE_EQ(s.hit_ratio(), expected);
}

TEST(ShardedCache, TextStatsPinCmdGetAgainstAdminTraffic) {
  ShardedCacheServer engine(small_config(), 4);
  TextProtocolSession session(engine);
  session.feed("set k 0 0 1\r\nv\r\n", 0);
  session.feed("get k\r\n", 0);
  session.feed("get miss\r\n", 0);
  for (int i = 0; i < 50; ++i) session.feed("get BLOOM_FILTER\r\n", 0);
  const std::string out = session.feed("stats\r\n", 0);
  EXPECT_NE(out.find("STAT cmd_get 2\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT get_hits 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT get_misses 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT admin_gets 50\r\n"), std::string::npos);
}

// --- shard-lock deadline shed path (satellite: queue_deadline semantics) ---

// Holds `shard`'s lock on a helper thread until told to let go.
class ShardHolder {
 public:
  ShardHolder(ShardedCacheServer& engine, std::size_t shard)
      : thread_([this, &engine, shard] {
          const auto guard = engine.lock_shard(shard);
          held_.store(true);
          while (!release_.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }) {
    while (!held_.load()) std::this_thread::yield();
  }
  ~ShardHolder() { release(); }
  void release() {
    release_.store(true);
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::atomic<bool> held_{false};
  std::atomic<bool> release_{false};
  std::thread thread_;
};

TEST(ShardedCache, LockDeadlineZeroMeansWaitForever) {
  ShardedCacheServer engine(small_config(), 4);
  engine.set("k", "v", 0);
  std::atomic<std::uint64_t> pipeline_sheds{0};
  std::atomic<std::uint64_t> deadline_sheds{0};
  PipelinePolicy policy;
  policy.sheds = &pipeline_sheds;
  policy.lock_deadline_us = 0;  // 0 = unlimited, NOT "shed immediately"
  policy.deadline_sheds = &deadline_sheds;
  TextProtocolSession session(engine, nullptr, nullptr, -1, policy);

  ShardHolder holder(engine, engine.shard_index("k"));
  std::thread releaser([&holder] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    holder.release();
  });
  // Blocks across the contention window, then succeeds — never sheds.
  EXPECT_EQ(session.feed("get k\r\n", 0), "VALUE k 0 1\r\nv\r\nEND\r\n");
  releaser.join();
  EXPECT_EQ(deadline_sheds.load(), 0u);
  EXPECT_EQ(pipeline_sheds.load(), 0u);
}

TEST(ShardedCache, DeadlineTimeoutShedsOnceOnTextHandler) {
  ShardedCacheServer engine(small_config(), 4);
  engine.set("k", "v", 0);
  std::atomic<std::uint64_t> pipeline_sheds{0};
  std::atomic<std::uint64_t> deadline_sheds{0};
  PipelinePolicy policy;
  policy.max_per_batch = 8;  // a cap is configured but never the shedder here
  policy.sheds = &pipeline_sheds;
  policy.lock_deadline_us = 2000;  // 2 ms
  policy.deadline_sheds = &deadline_sheds;
  TextProtocolSession session(engine, nullptr, nullptr, -1, policy);

  ShardHolder holder(engine, engine.shard_index("k"));
  EXPECT_EQ(session.feed("get k\r\n", 0), "SERVER_ERROR overloaded\r\n");
  EXPECT_EQ(session.feed("set k 0 0 1\r\nx\r\n", 0),
            "SERVER_ERROR overloaded\r\n");
  holder.release();
  // One count per shed command, on the DEADLINE counter only — a command
  // never lands in both shed buckets.
  EXPECT_EQ(deadline_sheds.load(), 2u);
  EXPECT_EQ(pipeline_sheds.load(), 0u);
  // The lock is free again: same session recovers without resync.
  EXPECT_EQ(session.feed("get k\r\n", 0), "VALUE k 0 1\r\nv\r\nEND\r\n");
}

TEST(ShardedCache, DeadlineTimeoutShedsOnceOnBinaryHandler) {
  ShardedCacheServer engine(small_config(), 4);
  engine.set("k", "v", 0);
  std::atomic<std::uint64_t> pipeline_sheds{0};
  std::atomic<std::uint64_t> deadline_sheds{0};
  PipelinePolicy policy;
  policy.sheds = &pipeline_sheds;
  policy.lock_deadline_us = 2000;
  policy.deadline_sheds = &deadline_sheds;
  BinaryProtocolSession session(engine, nullptr, -1, policy);

  binary::Frame get;
  get.opcode = binary::Opcode::kGet;
  get.key = "k";
  const std::string wire = binary::encode_frame(get, binary::kRequestMagic);

  ShardHolder holder(engine, engine.shard_index("k"));
  const std::string out = session.feed(wire, 0);
  std::size_t consumed = 0;
  const auto reply = binary::decode_frame(out, consumed);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status_or_vbucket,
            static_cast<std::uint16_t>(binary::Status::kBusy));
  holder.release();
  EXPECT_EQ(deadline_sheds.load(), 1u);
  EXPECT_EQ(pipeline_sheds.load(), 0u);
}

TEST(ShardedCache, PipelineCapShedNeverDoubleCountsAsDeadlineShed) {
  ShardedCacheServer engine(small_config(), 4);
  std::atomic<std::uint64_t> pipeline_sheds{0};
  std::atomic<std::uint64_t> deadline_sheds{0};
  PipelinePolicy policy;
  policy.max_per_batch = 1;
  policy.sheds = &pipeline_sheds;
  policy.lock_deadline_us = 2000;  // armed, but cap-shed commands must
  policy.deadline_sheds = &deadline_sheds;  // never reach the lock
  TextProtocolSession session(engine, nullptr, nullptr, -1, policy);

  // Two commands to the SAME shard in one batch: the second is shed by the
  // per-shard pipeline cap alone.
  const std::string a = key_in_shard(engine, 2, "a");
  const std::string b = key_in_shard(engine, 2, "b");
  engine.set(a, "v", 0);
  const std::string out =
      session.feed("get " + a + "\r\nget " + b + "\r\n", 0);
  EXPECT_EQ(out, "VALUE " + a + " 0 1\r\nv\r\nEND\r\n" +
                     "SERVER_ERROR overloaded\r\n");
  EXPECT_EQ(pipeline_sheds.load(), 1u);
  EXPECT_EQ(deadline_sheds.load(), 0u);
}

TEST(ShardedCache, PipelineCapIsPerShardNotPerBatch) {
  ShardedCacheServer engine(small_config(), 4);
  std::atomic<std::uint64_t> pipeline_sheds{0};
  PipelinePolicy policy;
  policy.max_per_batch = 1;
  policy.sheds = &pipeline_sheds;
  TextProtocolSession session(engine, nullptr, nullptr, -1, policy);

  // Two commands to DIFFERENT shards: each is within its shard's budget,
  // so a cap that would have shed the second under one global lock now
  // serves both — that is the point of striping.
  const std::string a = key_in_shard(engine, 1, "a");
  const std::string b = key_in_shard(engine, 3, "b");
  engine.set(a, "v", 0);
  engine.set(b, "w", 0);
  const std::string out =
      session.feed("get " + a + "\r\nget " + b + "\r\n", 0);
  EXPECT_EQ(out, "VALUE " + a + " 0 1\r\nv\r\nEND\r\n" + "VALUE " + b +
                     " 0 1\r\nw\r\nEND\r\n");
  EXPECT_EQ(pipeline_sheds.load(), 0u);
}

// --- concurrency drill (run under TSan via scripts/check.sh thread) --------

TEST(ShardedCache, EightThreadMixedOpDrill) {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 256 << 10;  // small: constant eviction pressure
  ShardedCacheServer engine(cfg, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 3000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&engine, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "key" + std::to_string((t * 31 + i * 7) % 512);
        switch (i % 8) {
          case 0: case 1: case 2:
            engine.get(key, 0);
            break;
          case 3: case 4:
            engine.set(key, std::string(32, 'v'), 0);
            break;
          case 5:
            engine.erase(key);
            break;
          case 6:
            engine.contains(key, 0);
            break;
          case 7:
            // Sampler-shaped traffic: merged readers and the digest
            // broadcast, concurrent with the data plane.
            if (i % 200 == 7) {
              engine.stats();
              engine.item_count();
              engine.get(kGetBloomFilterKey, 0);
            } else {
              engine.get(key, 0);
            }
            break;
        }
      }
    });
  }
  // One "operator" thread exercising the all-lock fan-outs concurrently.
  std::thread op([&engine] {
    for (int i = 0; i < 20; ++i) {
      engine.shard_imbalance();
      engine.flush();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& w : workers) w.join();
  op.join();

  EXPECT_LE(engine.bytes_used(), cfg.memory_budget_bytes);
  const CacheStats s = engine.stats();
  EXPECT_GT(s.gets, 0u);
  EXPECT_GT(s.sets, 0u);
}

}  // namespace
}  // namespace proteus::cache
