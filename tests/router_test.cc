#include "cluster/router.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hashring/proteus_placement.h"

namespace proteus::cluster {
namespace {

std::shared_ptr<const ring::ProteusPlacement> placement10() {
  static auto p = std::make_shared<ring::ProteusPlacement>(10);
  return p;
}

// Digest vector where every old server claims to hold every key.
std::vector<std::optional<bloom::BloomFilter>> all_positive_digests(int n) {
  std::vector<std::optional<bloom::BloomFilter>> digests(10);
  for (int i = 0; i < n; ++i) {
    bloom::BloomFilter bf(64, 1);
    // Saturate: all bits set -> maybe_contains always true.
    for (std::uint64_t k = 0; k < 2000; ++k) bf.insert(k);
    digests[static_cast<std::size_t>(i)] = bf;
  }
  return digests;
}

std::vector<std::optional<bloom::BloomFilter>> empty_digests(int n) {
  std::vector<std::optional<bloom::BloomFilter>> digests(10);
  for (int i = 0; i < n; ++i) digests[static_cast<std::size_t>(i)] = bloom::BloomFilter(1 << 16, 4);
  return digests;
}

TEST(Router, NoFallbackOutsideTransition) {
  Router router(placement10(), 10);
  for (int i = 0; i < 500; ++i) {
    const auto d = router.decide("page:" + std::to_string(i));
    EXPECT_GE(d.primary, 0);
    EXPECT_LT(d.primary, 10);
    EXPECT_EQ(d.fallback, -1);
  }
}

TEST(Router, DecisionsMatchPlacement) {
  Router router(placement10(), 7);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "page:" + std::to_string(i);
    EXPECT_EQ(router.decide(key).primary,
              placement10()->server_for(hash_bytes(key), 7));
  }
}

TEST(Router, SetActiveSwitchesInstantly) {
  Router router(placement10(), 10);
  router.set_active(5);
  EXPECT_EQ(router.active(), 5);
  EXPECT_FALSE(router.in_transition());
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(router.decide("k" + std::to_string(i)).primary, 5);
  }
}

TEST(Router, TransitionExposesOldLocationWhenDigestPositive) {
  Router router(placement10(), 10);
  router.begin_transition(5, 100 * kSecond, all_positive_digests(10));
  EXPECT_TRUE(router.in_transition());
  EXPECT_EQ(router.active(), 5);
  EXPECT_EQ(router.old_active(), 10);

  int fallbacks = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "page:" + std::to_string(i);
    const auto d = router.decide(key);
    EXPECT_LT(d.primary, 5);
    const int old_server = placement10()->server_for(hash_bytes(key), 10);
    if (old_server != d.primary) {
      // Digest always says yes, so the old location must be offered.
      EXPECT_EQ(d.fallback, old_server);
      ++fallbacks;
    } else {
      EXPECT_EQ(d.fallback, -1);
    }
  }
  // Shrinking 10 -> 5 remaps half the keys.
  EXPECT_NEAR(fallbacks, 1000, 100);
}

TEST(Router, NegativeDigestSuppressesFallback) {
  Router router(placement10(), 10);
  router.begin_transition(5, 100 * kSecond, empty_digests(10));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(router.decide("page:" + std::to_string(i)).fallback, -1);
  }
}

TEST(Router, ScaleUpFallsBackToOldSmallerMapping) {
  Router router(placement10(), 4);
  router.begin_transition(8, 100 * kSecond, all_positive_digests(4));
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "page:" + std::to_string(i);
    const auto d = router.decide(key);
    EXPECT_LT(d.primary, 8);
    if (d.fallback != -1) {
      EXPECT_LT(d.fallback, 4);  // old location is in the old active set
      EXPECT_EQ(d.fallback, placement10()->server_for(hash_bytes(key), 4));
    }
  }
}

TEST(Router, FinalizeEndsTransition) {
  Router router(placement10(), 10);
  router.begin_transition(5, 100 * kSecond, all_positive_digests(10));
  router.finalize_transition();
  EXPECT_FALSE(router.in_transition());
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(router.decide("page:" + std::to_string(i)).fallback, -1);
  }
}

TEST(Router, MissingDigestMeansNoFallback) {
  Router router(placement10(), 10);
  std::vector<std::optional<bloom::BloomFilter>> digests(10);  // all nullopt
  router.begin_transition(5, 100 * kSecond, std::move(digests));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(router.decide("page:" + std::to_string(i)).fallback, -1);
  }
}

TEST(Router, ConsistentAcrossReplicas) {
  // Two routers built from the same placement and digests (two web servers
  // after the broadcast) must agree on every decision — §II objective 3.
  Router a(placement10(), 10);
  Router b(placement10(), 10);
  a.begin_transition(6, kSecond, all_positive_digests(10));
  b.begin_transition(6, kSecond, all_positive_digests(10));
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto da = a.decide(key);
    const auto db = b.decide(key);
    ASSERT_EQ(da.primary, db.primary);
    ASSERT_EQ(da.fallback, db.fallback);
  }
}

}  // namespace
}  // namespace proteus::cluster
