#include "db/database.h"

#include <gtest/gtest.h>

#include <vector>

namespace proteus::db {
namespace {

TEST(Database, ValuesAreDeterministic) {
  sim::Simulation sim;
  Database a(sim, DbConfig{});
  Database b(sim, DbConfig{});
  EXPECT_EQ(a.value_for("page:1"), b.value_for("page:1"));
  EXPECT_NE(a.value_for("page:1"), a.value_for("page:2"));
  EXPECT_EQ(a.get("page:9"), a.value_for("page:9"));
}

TEST(Database, ShardsAreStableAndInRange) {
  sim::Simulation sim;
  Database db(sim, DbConfig{});
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "page:" + std::to_string(i);
    const int s = db.shard_for(key);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, db.num_shards());
    ASSERT_EQ(s, db.shard_for(key));
  }
}

TEST(Database, ShardsAreRoughlyBalanced) {
  sim::Simulation sim;
  Database db(sim, DbConfig{});
  std::vector<int> counts(static_cast<std::size_t>(db.num_shards()), 0);
  constexpr int kKeys = 70'000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[static_cast<std::size_t>(db.shard_for("page:" + std::to_string(i)))];
  }
  for (int c : counts) EXPECT_NEAR(c, kKeys / 7, kKeys / 7 * 0.05);
}

TEST(Database, AsyncGetTakesAtLeastBaseServiceTime) {
  sim::Simulation sim;
  DbConfig cfg;
  cfg.base_service_time = 5 * kMillisecond;
  Database db(sim, cfg);
  SimTime completed_at = -1;
  std::string result;
  db.async_get("page:1", [&](std::string v) {
    completed_at = sim.now();
    result = std::move(v);
  });
  sim.run();
  EXPECT_GE(completed_at, 5 * kMillisecond);
  EXPECT_EQ(result, db.value_for("page:1"));
  EXPECT_EQ(db.total_queries(), 1u);
}

TEST(Database, OverloadBuildsQueuesAndStretchesLatency) {
  sim::Simulation sim;
  DbConfig cfg;
  cfg.num_shards = 1;
  cfg.per_shard_concurrency = 1;
  cfg.base_service_time = 10 * kMillisecond;
  cfg.service_jitter_mean = 0;
  Database db(sim, cfg);

  std::vector<SimTime> completions;
  for (int i = 0; i < 10; ++i) {
    db.async_get("page:" + std::to_string(i),
                 [&](std::string) { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 10u);
  // Serial service: the last completion is ~10x the first.
  EXPECT_GE(completions.back(), 9 * completions.front());
  EXPECT_GE(db.max_queue_depth(), 8u);
}

TEST(Database, JitterVariesServiceTimes) {
  sim::Simulation sim;
  DbConfig cfg;
  cfg.num_shards = 1;
  cfg.per_shard_concurrency = 1000;  // no queueing: observe raw service
  cfg.base_service_time = kMillisecond;
  cfg.service_jitter_mean = 10 * kMillisecond;
  Database db(sim, cfg);
  std::vector<SimTime> completions;
  for (int i = 0; i < 200; ++i) {
    db.async_get("k" + std::to_string(i),
                 [&](std::string) { completions.push_back(sim.now()); });
  }
  sim.run();
  SimTime lo = completions[0], hi = completions[0];
  for (SimTime t : completions) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(hi - lo, 5 * kMillisecond);  // exponential spread visible
  EXPECT_GE(lo, kMillisecond);
}

TEST(Database, MeanUtilizationReflectsLoad) {
  sim::Simulation sim;
  DbConfig cfg;
  cfg.num_shards = 2;
  cfg.per_shard_concurrency = 1;
  cfg.base_service_time = 10 * kMillisecond;
  cfg.service_jitter_mean = 0;
  Database db(sim, cfg);
  db.async_get("page:1", [](std::string) {});
  sim.schedule_at(40 * kMillisecond, [] {});
  sim.run();
  // One 10 ms job over 40 ms across 2 single-slot shards -> 12.5% mean.
  EXPECT_NEAR(db.mean_utilization(), 0.125, 0.01);
}

}  // namespace
}  // namespace proteus::db
