#include "cluster/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace proteus::cluster {
namespace {

ScenarioResult sample_result(const std::string& name, double energy) {
  ScenarioResult r;
  r.kind = ScenarioKind::kProteus;
  r.name = name;
  r.total_requests = 1000;
  r.overall_hit_ratio = 0.9;
  r.overall_p999_ms = 42.5;
  r.db_queries = 111;
  r.old_server_hits = 22;
  r.total_energy_kwh = energy;
  r.web_energy_kwh = energy * 0.5;
  r.cache_energy_kwh = energy * 0.3;
  r.db_energy_kwh = energy * 0.2;
  r.applied_schedule = {4, 2, 4};
  for (int s = 0; s < 3; ++s) {
    SlotMetrics m;
    m.start = s * 30 * kSecond;
    m.n_active = 4 - s;
    m.requests = 100 + static_cast<std::uint64_t>(s);
    m.p99_ms = 10.0 + s;
    m.p999_ms = 20.0 + s;
    m.hit_ratio = 0.8;
    m.cluster_watts = 500;
    m.cache_watts = 100;
    r.slots.push_back(m);
  }
  return r;
}

TEST(Report, CsvHasHeaderAndOneRowPerSlot) {
  const std::string csv = slots_csv(sample_result("Proteus", 1.0));
  std::istringstream in(csv);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("slot,start_s,n_active", 0), 0u);
  EXPECT_EQ(lines[1].rfind("0,0,4,100,", 0), 0u);
  EXPECT_EQ(lines[3].rfind("2,60,2,102,", 0), 0u);
}

TEST(Report, CsvIsNumericallyParseable) {
  const std::string csv = slots_csv(sample_result("Proteus", 1.0));
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  std::string row;
  int rows = 0;
  while (std::getline(in, row)) {
    ++rows;
    // Every row has exactly 12 commas (13 columns).
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 12) << row;
  }
  EXPECT_EQ(rows, 3);
}

TEST(Report, JsonContainsCoreFields) {
  const std::string json = result_json(sample_result("Proteus", 2.0));
  EXPECT_NE(json.find("\"scenario\": \"Proteus\""), std::string::npos);
  EXPECT_NE(json.find("\"total_requests\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"applied_schedule\": [4, 2, 4]"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"slots\": ["), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, JsonEscapesSpecialCharacters) {
  ScenarioResult r = sample_result("we\"ird\\name\n", 1.0);
  const std::string json = result_json(r);
  EXPECT_NE(json.find("we\\\"ird\\\\name\\n"), std::string::npos);
}

TEST(Report, MarkdownComparisonComputesSavings) {
  std::vector<ScenarioResult> results;
  results.push_back(sample_result("Static", 2.0));
  results.push_back(sample_result("Proteus", 1.8));
  const std::string md = comparison_markdown(results);
  EXPECT_NE(md.find("| Static | 2.0000 | 0.0% |"), std::string::npos);
  EXPECT_NE(md.find("| Proteus | 1.8000 | 10.0% |"), std::string::npos);
}

TEST(Report, MarkdownHandlesEmptyInput) {
  const std::string md = comparison_markdown({});
  EXPECT_NE(md.find("| scenario |"), std::string::npos);
}

}  // namespace
}  // namespace proteus::cluster
