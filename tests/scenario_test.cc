#include "cluster/scenario.h"

#include "cluster/report.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace proteus::cluster {
namespace {

// A deliberately small, fast configuration with forced transitions and a
// database sized so that a miss storm overloads it (2 shards, 1 slot each).
ScenarioConfig mini_config(ScenarioKind kind) {
  ScenarioConfig cfg;
  cfg.kind = kind;
  cfg.schedule = {4, 2, 4, 2};
  cfg.slot_length = 20 * kSecond;
  cfg.metric_slot = 5 * kSecond;
  cfg.ttl = 8 * kSecond;

  cfg.diurnal.mean_rate = 200;
  cfg.diurnal.amplitude = 0;
  cfg.diurnal.jitter = 0;

  cfg.rbe.num_pages = 5000;
  cfg.rbe.pages_per_user = 20;

  // Capacity comfortably holds the hot working set even at n=2 (the point
  // of provisioning is that capacity tracks load), so transition behaviour
  // — not LRU thrash — is what differentiates the scenarios.
  cfg.cache.num_servers = 4;
  cfg.cache.per_server.memory_budget_bytes = 8 << 20;
  cfg.web.num_servers = 2;
  cfg.db.num_shards = 2;
  cfg.db.per_shard_concurrency = 1;
  cfg.db.base_service_time = 8 * kMillisecond;
  cfg.db.service_jitter_mean = 8 * kMillisecond;
  cfg.consistent_vnodes_per_server = 2;  // n^2/2 for n=4
  return cfg;
}

TEST(Scenario, ProducesPopulatedResult) {
  const ScenarioResult r = run_scenario(mini_config(ScenarioKind::kProteus));
  EXPECT_EQ(r.kind, ScenarioKind::kProteus);
  EXPECT_EQ(r.name, "Proteus");
  EXPECT_EQ(r.slots.size(), 16u);  // 80 s / 5 s
  EXPECT_GT(r.total_requests, 10'000u);
  EXPECT_GT(r.total_energy_kwh, 0.0);
  EXPECT_GT(r.overall_hit_ratio, 0.3);
  EXPECT_FALSE(r.cluster_power.empty());
  std::uint64_t slot_requests = 0;
  for (const auto& s : r.slots) slot_requests += s.requests;
  EXPECT_EQ(slot_requests, r.total_requests);
}

TEST(Scenario, StaticKeepsAllServersOn) {
  const ScenarioResult r = run_scenario(mini_config(ScenarioKind::kStatic));
  for (const auto& s : r.slots) {
    EXPECT_EQ(s.n_active, 4);
  }
  EXPECT_EQ(r.old_server_hits, 0u);
}

TEST(Scenario, DynamicScenariosFollowSchedule) {
  for (ScenarioKind kind :
       {ScenarioKind::kNaive, ScenarioKind::kConsistent, ScenarioKind::kProteus}) {
    const ScenarioResult r = run_scenario(mini_config(kind));
    // Slots 0-3 run with n=4, slots 4-7 with n=2, etc.
    EXPECT_EQ(r.slots[1].n_active, 4) << r.name;
    EXPECT_EQ(r.slots[5].n_active, 2) << r.name;
    EXPECT_EQ(r.slots[9].n_active, 4) << r.name;
    EXPECT_EQ(r.slots[13].n_active, 2) << r.name;
  }
}

TEST(Scenario, ProteusUsesOnDemandMigration) {
  const ScenarioResult r = run_scenario(mini_config(ScenarioKind::kProteus));
  EXPECT_GT(r.old_server_hits, 100u);
  const ScenarioResult naive = run_scenario(mini_config(ScenarioKind::kNaive));
  EXPECT_EQ(naive.old_server_hits, 0u);
}

TEST(Scenario, NaiveTransitionsHammerTheDatabase) {
  const ScenarioResult naive = run_scenario(mini_config(ScenarioKind::kNaive));
  const ScenarioResult prot = run_scenario(mini_config(ScenarioKind::kProteus));
  // Both pay the same cold fill; naive additionally re-fetches the remapped
  // working set at each of the three transitions.
  EXPECT_GT(naive.db_queries, prot.db_queries + 500)
      << "naive=" << naive.db_queries << " proteus=" << prot.db_queries;
}

TEST(Scenario, NaiveShowsDelaySpikeProteusDoesNot) {
  const ScenarioResult naive = run_scenario(mini_config(ScenarioKind::kNaive));
  const ScenarioResult prot = run_scenario(mini_config(ScenarioKind::kProteus));
  // Skip the shared cold-start slots; compare the post-warmup tails where
  // only transition behaviour differs.
  double naive_peak = 0, prot_peak = 0;
  for (std::size_t s = 3; s < naive.slots.size(); ++s) {
    naive_peak = std::max(naive_peak, naive.slots[s].p999_ms);
  }
  for (std::size_t s = 3; s < prot.slots.size(); ++s) {
    prot_peak = std::max(prot_peak, prot.slots[s].p999_ms);
  }
  EXPECT_GT(naive_peak, 1.5 * prot_peak)
      << "naive=" << naive_peak << "ms proteus=" << prot_peak << "ms";
}

TEST(Scenario, DynamicProvisioningSavesCacheEnergy) {
  const ScenarioResult st = run_scenario(mini_config(ScenarioKind::kStatic));
  const ScenarioResult prot = run_scenario(mini_config(ScenarioKind::kProteus));
  // Half the experiment runs with 2 of 4 cache servers off.
  EXPECT_LT(prot.cache_energy_kwh, 0.9 * st.cache_energy_kwh);
  EXPECT_LT(prot.total_energy_kwh, st.total_energy_kwh);
}

TEST(Scenario, EnergyDecomposesByTier) {
  const ScenarioResult r = run_scenario(mini_config(ScenarioKind::kProteus));
  EXPECT_NEAR(r.total_energy_kwh,
              r.web_energy_kwh + r.cache_energy_kwh + r.db_energy_kwh,
              r.total_energy_kwh * 1e-9);
}

TEST(Scenario, DeterministicAcrossRuns) {
  const ScenarioResult a = run_scenario(mini_config(ScenarioKind::kProteus));
  const ScenarioResult b = run_scenario(mini_config(ScenarioKind::kProteus));
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.db_queries, b.db_queries);
  EXPECT_DOUBLE_EQ(a.total_energy_kwh, b.total_energy_kwh);
}

TEST(Scenario, AppliedScheduleMatchesInputInOpenLoop) {
  const ScenarioResult r = run_scenario(mini_config(ScenarioKind::kProteus));
  EXPECT_EQ(r.applied_schedule, (std::vector<int>{4, 2, 4, 2}));
}

TEST(Scenario, DelayFeedbackGrowsUnderOverloadAndShrinksWhenIdle) {
  ScenarioConfig cfg = mini_config(ScenarioKind::kProteus);
  cfg.schedule = {2, 2, 2, 2, 2, 2};  // only the first entry seeds the loop
  cfg.use_delay_feedback = true;
  cfg.feedback.reference = 60 * kMillisecond;
  cfg.feedback.bound = 80 * kMillisecond;
  cfg.feedback.min_servers = 1;
  cfg.feedback.max_servers = 4;
  const ScenarioResult r = run_scenario(cfg);
  ASSERT_EQ(r.applied_schedule.size(), 6u);
  // The cold fill overloads the database; the controller must react by
  // growing beyond the seed at least once.
  int peak = 0;
  for (int n : r.applied_schedule) peak = std::max(peak, n);
  EXPECT_GT(peak, 2);
  for (int n : r.applied_schedule) {
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 4);
  }
}

TEST(Scenario, PiFeedbackControllerDrivesTheLoop) {
  ScenarioConfig cfg = mini_config(ScenarioKind::kProteus);
  cfg.schedule = {2, 2, 2, 2, 2, 2};
  cfg.use_delay_feedback = true;
  cfg.feedback_kind = ScenarioConfig::FeedbackKind::kPi;
  cfg.pi_feedback.reference = 60 * kMillisecond;
  cfg.pi_feedback.min_servers = 1;
  cfg.pi_feedback.max_servers = 4;
  const ScenarioResult r = run_scenario(cfg);
  ASSERT_EQ(r.applied_schedule.size(), 6u);
  int peak = 0;
  for (int n : r.applied_schedule) {
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 4);
    peak = std::max(peak, n);
  }
  EXPECT_GT(peak, 2) << "the PI loop never reacted to the cold-fill overload";
}

TEST(Scenario, StaticIgnoresDelayFeedback) {
  ScenarioConfig cfg = mini_config(ScenarioKind::kStatic);
  cfg.use_delay_feedback = true;
  const ScenarioResult r = run_scenario(cfg);
  for (const auto& s : r.slots) EXPECT_EQ(s.n_active, 4);
}

TEST(Scenario, HeterogeneousPowerProfilesChangeCacheEnergy) {
  ScenarioConfig cheap = mini_config(ScenarioKind::kStatic);
  cheap.cache_power_profiles.assign(4, ServerPowerProfile{2.0, 20.0, 40.0});
  ScenarioConfig hungry = mini_config(ScenarioKind::kStatic);
  hungry.cache_power_profiles.assign(4, ServerPowerProfile{10.0, 90.0, 160.0});
  const ScenarioResult a = run_scenario(cheap);
  const ScenarioResult b = run_scenario(hungry);
  EXPECT_LT(a.cache_energy_kwh * 2, b.cache_energy_kwh);
  // Web/db tiers use the shared uniform profile either way.
  EXPECT_NEAR(a.web_energy_kwh, b.web_energy_kwh, 1e-9);
}

TEST(Scenario, ReportsSerializeARealRun) {
  const ScenarioResult r = run_scenario(mini_config(ScenarioKind::kProteus));
  const std::string csv = slots_csv(r);
  // Header + one row per metric slot.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            r.slots.size() + 1);
  const std::string json = result_json(r);
  EXPECT_NE(json.find("\"scenario\": \"Proteus\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  const std::string md = comparison_markdown({r, r});
  EXPECT_NE(md.find("| Proteus |"), std::string::npos);
}

TEST(Scenario, SlotDbQpsAccountsForAllQueries) {
  const ScenarioResult r = run_scenario(mini_config(ScenarioKind::kNaive));
  double total_from_slots = 0;
  for (const auto& s : r.slots) {
    total_from_slots += s.db_qps * to_seconds(5 * kSecond);
  }
  // Slot-integrated db rate ~ total queries (the drain after the horizon
  // adds a few stragglers outside any slot).
  EXPECT_NEAR(total_from_slots, static_cast<double>(r.db_queries),
              0.05 * static_cast<double>(r.db_queries) + 50);
}

TEST(Scenario, DefaultExperimentConfigIsWellFormed) {
  const ScenarioConfig cfg = default_experiment_config(ScenarioKind::kProteus);
  EXPECT_EQ(cfg.schedule.size(), 33u);
  const int hi = *std::max_element(cfg.schedule.begin(), cfg.schedule.end());
  const int lo = *std::min_element(cfg.schedule.begin(), cfg.schedule.end());
  EXPECT_LE(hi, cfg.cache.num_servers);
  EXPECT_GE(lo, 1);
  EXPECT_GT(hi, lo) << "the schedule should breathe with the diurnal load";
  EXPECT_EQ(cfg.db.num_shards, 7);
  EXPECT_EQ(cfg.web.num_servers, 10);
  EXPECT_EQ(cfg.cache.num_servers, 10);
}

}  // namespace
}  // namespace proteus::cluster
