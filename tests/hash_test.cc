#include "common/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace proteus {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(12345), splitmix64(12345));
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

TEST(SplitMix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half of the output bits.
  const std::uint64_t base = splitmix64(0xDEADBEEF);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped = splitmix64(0xDEADBEEFULL ^ (1ULL << bit));
    const int differing = __builtin_popcountll(base ^ flipped);
    EXPECT_GE(differing, 10) << "bit " << bit;
    EXPECT_LE(differing, 54) << "bit " << bit;
  }
}

TEST(Fnv1a, MatchesKnownVectors) {
  // Reference values for the 64-bit FNV-1a algorithm.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashBytes, DiffersAcrossSeeds) {
  EXPECT_NE(hash_bytes("page:1", 0), hash_bytes("page:1", 1));
  EXPECT_NE(hash_bytes("page:1", 0), hash_bytes("page:2", 0));
  EXPECT_EQ(hash_bytes("page:1", 7), hash_bytes("page:1", 7));
}

TEST(HashBytes, HandlesAllLengths) {
  // Exercise the 8-byte block loop and every tail length.
  std::set<std::uint64_t> seen;
  std::string s;
  for (int len = 0; len <= 40; ++len) {
    seen.insert(hash_bytes(s));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(seen.size(), 41u) << "collision among trivially distinct inputs";
}

TEST(HashBytes, DistributesUniformly) {
  // Chi-squared-ish sanity check: bucket 100k sequential keys into 16 bins.
  constexpr int kBins = 16;
  constexpr int kKeys = 100'000;
  std::vector<int> bins(kBins, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++bins[hash_bytes("key:" + std::to_string(i)) % kBins];
  }
  const double expected = static_cast<double>(kKeys) / kBins;
  for (int count : bins) {
    EXPECT_NEAR(count, expected, expected * 0.05);
  }
}

TEST(DoubleHasher, GeneratesDistinctProbes) {
  DoubleHasher dh(std::string_view("page:42"));
  std::set<std::uint64_t> probes;
  for (unsigned i = 0; i < 16; ++i) probes.insert(dh(i) % 100003);
  EXPECT_GE(probes.size(), 14u);  // near-distinct positions
}

TEST(DoubleHasher, IsConsistentAcrossConstructions) {
  DoubleHasher a(std::string_view("k"), 5);
  DoubleHasher b(std::string_view("k"), 5);
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(a(i), b(i));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Crc32c, MatchesPublishedVectors) {
  // RFC 3720 appendix B.4 (iSCSI) Castagnoli test vectors — any tier
  // (software slicing, SSE4.2, AVX-512 folding) must agree with these.
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8a9136aau);
  EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62a8ab43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c(ascending), 0x46dd794eu);
  EXPECT_EQ(crc32c("123456789"), 0xe3069283u);
}

TEST(Crc32c, SeedChainsAcrossArbitrarySplits) {
  std::string payload;
  for (int i = 0; i < 4096; ++i) payload += static_cast<char>(i * 131 + 7);
  const std::uint32_t whole = crc32c(payload);
  for (const std::size_t split : {std::size_t{1}, std::size_t{9},
                                  std::size_t{63}, std::size_t{64},
                                  std::size_t{1000}, std::size_t{4095}}) {
    const std::string_view view(payload);
    EXPECT_EQ(crc32c(view.substr(split), crc32c(view.substr(0, split))),
              whole)
        << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  // The end-to-end integrity property the wire path leans on: any single
  // bit flip anywhere in a cache value must change the checksum.
  std::string value = "proteus:page:0042 payload with some entropy 31337";
  const std::uint32_t good = crc32c(value);
  for (std::size_t byte = 0; byte < value.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      value[byte] = static_cast<char>(value[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(value), good)
          << "undetected flip at byte " << byte << " bit " << bit;
      value[byte] = static_cast<char>(value[byte] ^ (1 << bit));
    }
  }
  EXPECT_EQ(crc32c(value), good);
}

}  // namespace
}  // namespace proteus
