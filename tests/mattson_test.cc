#include "cache/mattson.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <string>
#include <vector>

#include "common/rng.h"

namespace proteus::cache {
namespace {

// Brute-force LRU of a fixed item capacity, for cross-checking.
std::uint64_t brute_force_lru_hits(const std::vector<std::string>& keys,
                                   std::size_t capacity) {
  std::list<std::string> lru;  // front = most recent
  std::uint64_t hits = 0;
  for (const std::string& key : keys) {
    auto it = std::find(lru.begin(), lru.end(), key);
    if (it != lru.end()) {
      ++hits;
      lru.erase(it);
    } else if (lru.size() == capacity) {
      lru.pop_back();
    }
    lru.push_front(key);
  }
  return hits;
}

TEST(StackDistance, HandComputedExample) {
  StackDistanceAnalyzer a;
  // a b c a : 'a' re-referenced with distance 3 (a,b,c distinct since).
  for (const char* k : {"a", "b", "c", "a"}) a.record(k);
  EXPECT_EQ(a.references(), 4u);
  EXPECT_EQ(a.cold_misses(), 3u);
  EXPECT_EQ(a.hits_at(2), 0u);
  EXPECT_EQ(a.hits_at(3), 1u);
  EXPECT_EQ(a.hits_at(1000), 1u);
}

TEST(StackDistance, ImmediateReuseIsDistanceOne) {
  StackDistanceAnalyzer a;
  a.record("x");
  a.record("x");
  a.record("x");
  EXPECT_EQ(a.hits_at(1), 2u);
}

TEST(StackDistance, MatchesBruteForceLruOnRandomTraces) {
  Rng rng(42);
  std::vector<std::string> keys;
  for (int i = 0; i < 3000; ++i) {
    keys.push_back("k" + std::to_string(rng.next_below(60)));
  }
  StackDistanceAnalyzer a;
  for (const auto& k : keys) a.record(k);

  for (std::size_t capacity : {1u, 2u, 5u, 10u, 25u, 60u, 100u}) {
    EXPECT_EQ(a.hits_at(capacity), brute_force_lru_hits(keys, capacity))
        << "capacity=" << capacity;
  }
}

TEST(StackDistance, MatchesBruteForceOnZipfTrace) {
  Rng rng(7);
  ZipfSampler zipf(500, 0.9);
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back("p" + std::to_string(zipf(rng)));
  }
  StackDistanceAnalyzer a;
  for (const auto& k : keys) a.record(k);
  for (std::size_t capacity : {10u, 50u, 200u, 500u}) {
    EXPECT_EQ(a.hits_at(capacity), brute_force_lru_hits(keys, capacity))
        << "capacity=" << capacity;
  }
}

TEST(StackDistance, CurveIsMonotone) {
  Rng rng(9);
  ZipfSampler zipf(2000, 0.8);
  StackDistanceAnalyzer a;
  for (int i = 0; i < 50'000; ++i) {
    a.record("p" + std::to_string(zipf(rng)));
  }
  const std::vector<std::size_t> caps = {1, 10, 100, 500, 1000, 2000};
  const auto curve = a.hit_ratio_curve(caps);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  // An infinite cache misses only the compulsory (cold) misses.
  EXPECT_NEAR(a.hit_ratio_at(1u << 20),
              1.0 - static_cast<double>(a.cold_misses()) /
                        static_cast<double>(a.references()),
              1e-12);
}

TEST(StackDistance, CapacityForHitRatio) {
  Rng rng(11);
  ZipfSampler zipf(1000, 1.0);
  StackDistanceAnalyzer a;
  for (int i = 0; i < 30'000; ++i) {
    a.record("p" + std::to_string(zipf(rng)));
  }
  const std::size_t c = a.capacity_for_hit_ratio(0.7);
  ASSERT_GT(c, 0u);
  EXPECT_GE(a.hit_ratio_at(c), 0.7);
  if (c > 1) EXPECT_LT(a.hit_ratio_at(c - 1), 0.7);
  // Unreachable targets return 0.
  EXPECT_EQ(a.capacity_for_hit_ratio(0.9999), 0u);
}

TEST(StackDistance, EmptyAnalyzer) {
  StackDistanceAnalyzer a;
  EXPECT_EQ(a.references(), 0u);
  EXPECT_EQ(a.hits_at(100), 0u);
  EXPECT_EQ(a.hit_ratio_at(100), 0.0);
}

}  // namespace
}  // namespace proteus::cache
