// Overload protection end to end: the core primitives (admission budget,
// AIMD limiter, singleflight, migration throttle), per-batch pipeline
// shedding with well-formed replies in BOTH wire protocols, daemon-side
// two-priority admission over real sockets, and the client's degraded
// response + dogpile collapse — including their span cause tags.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cache/binary_protocol.h"
#include "cache/text_protocol.h"
#include "client/memcache_client.h"
#include "core/overload.h"
#include "core/proteus.h"
#include "net/memcache_daemon.h"
#include "obs/span.h"

namespace proteus {
namespace {

// --- AdmissionController -----------------------------------------------------

TEST(AdmissionController, BudgetAndTwoPrioritySheds) {
  core::AdmissionController::Options opt;
  opt.max_inflight = 4;
  opt.background_fill = 0.5;  // background only while inflight <= 2
  core::AdmissionController ac(opt);

  EXPECT_EQ(ac.try_admit(/*background=*/false), core::Admission::kAdmit);
  EXPECT_EQ(ac.try_admit(/*background=*/true), core::Admission::kAdmit);
  EXPECT_EQ(ac.inflight(), 2u);
  // Past the background fill mark: maintenance traffic is shed first...
  EXPECT_EQ(ac.try_admit(/*background=*/true),
            core::Admission::kShedBackground);
  // ...while foreground still fits in the budget.
  EXPECT_EQ(ac.try_admit(/*background=*/false), core::Admission::kAdmit);
  EXPECT_EQ(ac.try_admit(/*background=*/false), core::Admission::kAdmit);
  EXPECT_EQ(ac.try_admit(/*background=*/false), core::Admission::kShedOverCap);
  EXPECT_EQ(ac.inflight(), 4u) << "shed verdicts must not leak slots";

  ac.release();
  EXPECT_EQ(ac.try_admit(/*background=*/false), core::Admission::kAdmit);
}

TEST(AdmissionController, DisabledAdmitsEverything) {
  core::AdmissionController ac;  // max_inflight = 0
  EXPECT_FALSE(ac.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ac.try_admit(i % 2 == 0), core::Admission::kAdmit);
  }
}

// --- AdaptiveLimiter ---------------------------------------------------------

TEST(AdaptiveLimiter, AimdShrinksOnSlowGrowsOnFast) {
  core::AdaptiveLimiter::Options opt;
  opt.initial_limit = 10.0;
  opt.latency_target = 20 * kMillisecond;
  opt.decrease_factor = 0.7;
  core::AdaptiveLimiter limiter(opt);

  ASSERT_TRUE(limiter.try_begin());
  limiter.end(/*observed_latency=*/100 * kMillisecond);  // slow sample
  EXPECT_NEAR(limiter.limit(), 7.0, 1e-9);
  EXPECT_TRUE(limiter.overloaded());

  ASSERT_TRUE(limiter.try_begin());
  limiter.end(/*observed_latency=*/kMillisecond);  // fast sample
  EXPECT_GT(limiter.limit(), 7.0);
  EXPECT_FALSE(limiter.overloaded());
}

TEST(AdaptiveLimiter, ShedsOverTheLimitAndLatchesOverload) {
  core::AdaptiveLimiter::Options opt;
  opt.initial_limit = 1.0;
  opt.min_limit = 1.0;
  core::AdaptiveLimiter limiter(opt);

  ASSERT_TRUE(limiter.try_begin());
  EXPECT_FALSE(limiter.try_begin()) << "limit 1: second fetch must shed";
  EXPECT_EQ(limiter.sheds(), 1u);
  EXPECT_TRUE(limiter.overloaded());
  limiter.cancel();
  EXPECT_EQ(limiter.inflight(), 0);
}

// The ISSUE's TSan target: concurrent resize (configure) racing
// try_begin/end/overloaded from worker threads must be clean.
TEST(AdaptiveLimiter, ConcurrentReconfigureIsThreadSafe) {
  core::AdaptiveLimiter limiter;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&limiter, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (limiter.try_begin()) {
          limiter.end((limiter.inflight() % 2 == 0) ? kMillisecond
                                                    : 50 * kMillisecond);
        }
        (void)limiter.overloaded();
        (void)limiter.limit();
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    core::AdaptiveLimiter::Options opt;
    opt.initial_limit = 4.0 + static_cast<double>(i % 8);
    opt.max_limit = 64.0;
    limiter.configure(opt);
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_GE(limiter.limit(), 1.0);
  EXPECT_LE(limiter.limit(), 64.0);
}

// --- SingleflightGroup -------------------------------------------------------

TEST(Singleflight, NConcurrentFetchesCollapseToOne) {
  core::SingleflightGroup group;
  std::mutex mu;
  std::condition_variable cv;
  bool leader_entered = false;
  bool release_leader = false;
  std::atomic<int> fetches{0};

  const auto fetch = [&]() -> std::optional<std::string> {
    ++fetches;
    std::unique_lock<std::mutex> lock(mu);
    leader_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_leader; });
    return "the-value";
  };

  constexpr int kCallers = 8;
  std::atomic<int> leaders{0};
  std::atomic<int> got_value{0};
  std::vector<std::thread> callers;
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] {
      const core::SingleflightGroup::Result r = group.run("hot-key", fetch);
      if (r.leader) ++leaders;
      if (r.value == "the-value") ++got_value;
    });
  }
  {
    // Wait for the leader to be inside the fetch, give followers time to
    // pile up behind it, then release.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return leader_entered; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    const std::lock_guard<std::mutex> lock(mu);
    release_leader = true;
  }
  cv.notify_all();
  for (auto& c : callers) c.join();

  EXPECT_EQ(fetches.load(), 1) << "N concurrent misses must cost ONE fetch";
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(got_value.load(), kCallers);
  EXPECT_EQ(group.collapsed(), static_cast<std::uint64_t>(kCallers - 1));
}

TEST(Singleflight, ShedLeaderPropagatesNulloptToFollowers) {
  core::SingleflightGroup group;
  // Sequential sanity: a nullopt leader result reaches the caller, and the
  // entry retires so the next run starts fresh.
  auto r = group.run("k", [] { return std::optional<std::string>{}; });
  EXPECT_TRUE(r.leader);
  EXPECT_FALSE(r.value.has_value());
  r = group.run("k", [] { return std::optional<std::string>("v"); });
  EXPECT_TRUE(r.leader);
  EXPECT_EQ(r.value, "v");
}

TEST(Singleflight, DistinctKeysDoNotSerialize) {
  core::SingleflightGroup group;
  // Two keys fetched from two threads, each fetch blocking until the OTHER
  // fetch has started: deadlocks unless fn runs without the group lock.
  std::atomic<int> started{0};
  const auto make_fetch = [&]() {
    return [&]() -> std::optional<std::string> {
      ++started;
      while (started.load() < 2) std::this_thread::yield();
      return "v";
    };
  };
  std::thread a([&] { group.run("a", make_fetch()); });
  std::thread b([&] { group.run("b", make_fetch()); });
  a.join();
  b.join();
  EXPECT_EQ(group.collapsed(), 0u);
}

// --- MigrationThrottle -------------------------------------------------------

TEST(MigrationThrottle, FreeWhenCalmBucketedWhenOverloaded) {
  core::MigrationThrottle::Options opt;
  opt.rate_per_sec = 10.0;
  opt.burst = 2.0;
  core::MigrationThrottle throttle(opt);

  // Calm: everything migrates (the paper's unconditional line 12).
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(throttle.allow(i * kMillisecond));
  EXPECT_EQ(throttle.deferred(), 0u);

  throttle.set_overloaded(true);
  const SimTime t0 = kSecond;
  EXPECT_TRUE(throttle.allow(t0));   // burst token 1
  EXPECT_TRUE(throttle.allow(t0));   // burst token 2
  EXPECT_FALSE(throttle.allow(t0));  // bucket empty
  EXPECT_EQ(throttle.deferred(), 1u);
  // 10/s refills one token every 100 ms.
  EXPECT_TRUE(throttle.allow(t0 + 150 * kMillisecond));
  EXPECT_FALSE(throttle.allow(t0 + 150 * kMillisecond));

  throttle.set_overloaded(false);
  EXPECT_TRUE(throttle.allow(t0 + 151 * kMillisecond));
}

TEST(MigrationThrottle, RateZeroDefersEverythingWhileOverloaded) {
  core::MigrationThrottle::Options opt;
  opt.rate_per_sec = 0.0;
  core::MigrationThrottle throttle(opt);
  throttle.set_overloaded(true);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(throttle.allow(i));
  EXPECT_EQ(throttle.deferred(), 10u);
}

// --- protocol-level pipeline shedding ----------------------------------------

cache::CacheConfig proto_config() {
  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 4 << 20;
  cfg.auto_size_digest = false;
  cfg.digest.num_counters = 1 << 14;
  cfg.digest.counter_bits = 4;
  cfg.digest.num_hashes = 4;
  return cfg;
}

TEST(TextPipelineCap, ShedsExcessCommandsWithWellFormedReplies) {
  cache::CacheServer server(proto_config());
  std::atomic<std::uint64_t> sheds{0};
  cache::TextProtocolSession session(server, nullptr, nullptr, -1,
                                     cache::PipelinePolicy{1, &sheds});

  EXPECT_EQ(session.feed("set a 0 0 1\r\nx\r\n", 0), "STORED\r\n");
  // Batch of two gets, cap 1: the second is shed with a well-formed error
  // line, not silence and not a closed connection.
  EXPECT_EQ(session.feed("get a\r\nget a\r\n", 0),
            "VALUE a 0 1\r\nx\r\nEND\r\nSERVER_ERROR overloaded\r\n");
  EXPECT_EQ(sheds.load(), 1u);
  // The cap is per batch: the next feed() serves normally again.
  EXPECT_EQ(session.feed("get a\r\n", 0), "VALUE a 0 1\r\nx\r\nEND\r\n");
}

TEST(TextPipelineCap, ShedStorageCommandStillConsumesItsDataBlock) {
  cache::CacheServer server(proto_config());
  std::atomic<std::uint64_t> sheds{0};
  cache::TextProtocolSession session(server, nullptr, nullptr, -1,
                                     cache::PipelinePolicy{1, &sheds});

  // get serves (1/1), the set is shed — but its 5-byte payload MUST still
  // be consumed or the stream desyncs and "hello" parses as a command.
  EXPECT_EQ(
      session.feed("get a\r\nset b 0 0 5\r\nhello\r\nget a\r\n", 0),
      "END\r\nSERVER_ERROR overloaded\r\nSERVER_ERROR overloaded\r\n");
  EXPECT_EQ(sheds.load(), 2u);
  // b was not stored, and the session is still in protocol sync.
  EXPECT_EQ(session.feed("get b\r\n", 0), "END\r\n");
}

TEST(TextPipelineCap, QuitIsExemptFromTheCap) {
  cache::CacheServer server(proto_config());
  std::atomic<std::uint64_t> sheds{0};
  cache::TextProtocolSession session(server, nullptr, nullptr, -1,
                                     cache::PipelinePolicy{1, &sheds});
  // Even with the batch budget spent, quit must still work: shedding the
  // goodbye would pin the connection.
  EXPECT_EQ(session.feed("get a\r\nget a\r\nquit\r\n", 0),
            "END\r\nSERVER_ERROR overloaded\r\n");
  EXPECT_TRUE(session.closed());
}

TEST(TextProtocol, BackgroundTokenParsesAndStrips) {
  const cache::TextCommand cmd = cache::parse_command_line("get foo bg");
  EXPECT_EQ(cmd.op, cache::TextCommand::Op::kGet);
  ASSERT_EQ(cmd.keys.size(), 1u);
  EXPECT_EQ(cmd.keys[0], "foo");
  EXPECT_TRUE(cmd.background);
  // A bare get of a key literally named "bg" still addresses that key.
  const cache::TextCommand literal = cache::parse_command_line("get bg");
  EXPECT_FALSE(literal.background);
  ASSERT_EQ(literal.keys.size(), 1u);
  EXPECT_EQ(literal.keys[0], "bg");
}

TEST(BinaryPipelineCap, ShedsExcessFramesWithEbusy) {
  using cache::binary::Frame;
  using cache::binary::Opcode;
  using cache::binary::Status;
  cache::CacheServer server(proto_config());
  std::atomic<std::uint64_t> sheds{0};
  cache::BinaryProtocolSession session(server, nullptr, -1,
                                       cache::PipelinePolicy{1, &sheds});

  Frame get1;
  get1.opcode = Opcode::kGet;
  get1.key = "a";
  get1.opaque = 0x1111;
  Frame get2 = get1;
  get2.opaque = 0x2222;
  const std::string wire =
      cache::binary::encode_frame(get1, cache::binary::kRequestMagic) +
      cache::binary::encode_frame(get2, cache::binary::kRequestMagic);
  const std::string out = session.feed(wire, 0);

  std::size_t consumed = 0;
  const auto r1 = cache::binary::decode_frame(out, consumed);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->status_or_vbucket,
            static_cast<std::uint16_t>(Status::kKeyNotFound));
  const auto r2 = cache::binary::decode_frame(
      std::string_view(out).substr(consumed), consumed);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->status_or_vbucket, static_cast<std::uint16_t>(Status::kBusy));
  EXPECT_EQ(r2->opaque, 0x2222u) << "shed reply must echo the request opaque";
  EXPECT_EQ(sheds.load(), 1u);
}

// --- daemon admission over real sockets --------------------------------------

class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void send(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  // Reads until `n` binary response frames decode from the stream.
  std::vector<cache::binary::Frame> recv_frames(std::size_t n) {
    std::vector<cache::binary::Frame> frames;
    std::string buf;
    char chunk[4096];
    while (frames.size() < n) {
      std::size_t consumed = 0;
      if (auto f = cache::binary::decode_frame(buf, consumed)) {
        frames.push_back(std::move(*f));
        buf.erase(0, consumed);
        continue;
      }
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(got));
    }
    return frames;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class OverloadedDaemon : public ::testing::Test {
 protected:
  void SetUp() override {
    net::AdmissionOptions admission;
    admission.max_inflight = 1;
    admission.background_fill = 0.0;  // shed ALL background traffic
    daemon_ = std::make_unique<net::MemcacheDaemon>(
        proto_config(), /*port=*/0, net::monotonic_now, /*threads=*/1,
        net::TcpServer::Limits{}, admission);
    ASSERT_TRUE(daemon_->ok());
    thread_ = std::thread([this] { daemon_->run(); });
  }
  void TearDown() override {
    daemon_->stop();
    thread_.join();
  }

  std::unique_ptr<net::MemcacheDaemon> daemon_;
  std::thread thread_;
};

TEST_F(OverloadedDaemon, TextBackgroundGetShedsForegroundServes) {
  client::MemcacheConnection conn(daemon_->port());
  ASSERT_TRUE(conn.ok());

  // Background traffic is shed (fill fraction 0) with a well-formed reply:
  // the client sees kOverloaded and the connection STAYS USABLE.
  EXPECT_FALSE(conn.get("k", 0, /*background=*/true).has_value());
  EXPECT_EQ(conn.last_error(), net::NetError::kOverloaded);
  ASSERT_TRUE(conn.ok());

  // Foreground work on the very same connection proceeds.
  EXPECT_TRUE(conn.set("k", "v"));
  const auto value = conn.get("k");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "v");

  EXPECT_GE(daemon_->shed_background(), 1u);
  EXPECT_NE(daemon_->metrics_text().find("proteus_daemon_shed_background_total"),
            std::string::npos);
}

TEST_F(OverloadedDaemon, BinaryBackgroundShedRepliesEbusyEchoingOpaque) {
  RawClient raw(daemon_->port());
  ASSERT_TRUE(raw.connected());

  // The digest pull is background by definition: a binary GET of the
  // SET_BLOOM_FILTER key classifies the batch as sheddable maintenance.
  cache::binary::Frame req;
  req.opcode = cache::binary::Opcode::kGet;
  req.key = "SET_BLOOM_FILTER";
  req.opaque = 0xfeedf00d;
  raw.send(cache::binary::encode_frame(req, cache::binary::kRequestMagic));

  const auto frames = raw.recv_frames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].status_or_vbucket,
            static_cast<std::uint16_t>(cache::binary::Status::kBusy));
  EXPECT_EQ(frames[0].opaque, 0xfeedf00du);
  EXPECT_EQ(frames[0].opcode, cache::binary::Opcode::kGet);
  EXPECT_GE(daemon_->shed_background(), 1u);
}

// --- client: degraded responses and dogpile suppression ----------------------

class LiveDaemon : public ::testing::Test {
 protected:
  void SetUp() override {
    daemon_ = std::make_unique<net::MemcacheDaemon>(proto_config(), 0);
    ASSERT_TRUE(daemon_->ok());
    thread_ = std::thread([this] { daemon_->run(); });
  }
  void TearDown() override {
    daemon_->stop();
    thread_.join();
  }

  client::ProteusClient::Options base_options() {
    client::ProteusClient::Options opt;
    opt.endpoints = {daemon_->port()};
    opt.connect_timeout = 500 * kMillisecond;
    opt.op_timeout = 500 * kMillisecond;
    return opt;
  }

  std::unique_ptr<net::MemcacheDaemon> daemon_;
  std::thread thread_;
};

TEST_F(LiveDaemon, LimiterShedServesDegradedResponseWithShedSpan) {
  core::AdaptiveLimiter::Options lopt;
  lopt.initial_limit = 1.0;
  lopt.min_limit = 1.0;
  lopt.max_limit = 1.0;
  core::AdaptiveLimiter limiter(lopt);
  obs::SpanCollector spans(1024, /*sample_every=*/1);

  auto opt = base_options();
  opt.limiter = &limiter;
  opt.degraded_response = "degraded";
  opt.spans = &spans;
  std::uint64_t backend_calls = 0;
  client::ProteusClient web(opt, [&](std::string_view key) {
    ++backend_calls;
    return "db:" + std::string(key);
  });

  // Occupy the single limiter slot, as a concurrent fetch would.
  ASSERT_TRUE(limiter.try_begin());
  EXPECT_EQ(web.get("missing-key", 0), "degraded");
  EXPECT_EQ(backend_calls, 0u) << "a shed fetch must never reach the backend";
  EXPECT_EQ(web.stats().load_sheds, 1u);
  limiter.cancel();

  // With the slot free the same key is a normal backend fill.
  EXPECT_EQ(web.get("missing-key", kSecond), "db:missing-key");
  EXPECT_EQ(backend_calls, 1u);

  bool saw_shed_cause = false;
  for (const auto& span : spans.snapshot()) {
    if (span.cause == obs::SpanCause::kShed) saw_shed_cause = true;
  }
  EXPECT_TRUE(saw_shed_cause) << "the shed must be visible as a span cause";
}

TEST_F(LiveDaemon, SingleflightCollapsesAcrossClientsWithCoalescedSpan) {
  core::SingleflightGroup group;
  obs::SpanCollector spans(1024, /*sample_every=*/1);

  // Two per-thread clients sharing one group, as a web process would.
  auto opt = base_options();
  opt.singleflight = &group;
  opt.spans = &spans;

  std::mutex mu;
  std::condition_variable cv;
  bool leader_entered = false;
  bool release_leader = false;
  std::atomic<int> backend_calls{0};
  const auto slow_backend = [&](std::string_view key) {
    ++backend_calls;
    std::unique_lock<std::mutex> lock(mu);
    leader_entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_leader; });
    return "db:" + std::string(key);
  };

  client::ProteusClient leader(opt, slow_backend);
  client::ProteusClient follower(opt, slow_backend);

  std::string leader_value, follower_value;
  std::thread leader_thread(
      [&] { leader_value = leader.get("dogpile-key", 0); });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return leader_entered; });
  }
  std::thread follower_thread(
      [&] { follower_value = follower.get("dogpile-key", 0); });
  // Give the follower time to miss the cache and park in the group, then
  // let the leader's backend fetch complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    const std::lock_guard<std::mutex> lock(mu);
    release_leader = true;
  }
  cv.notify_all();
  leader_thread.join();
  follower_thread.join();

  EXPECT_EQ(backend_calls.load(), 1) << "N concurrent misses -> 1 fetch";
  EXPECT_EQ(leader_value, "db:dogpile-key");
  EXPECT_EQ(follower_value, "db:dogpile-key");
  EXPECT_EQ(follower.stats().coalesced_fetches, 1u);
  EXPECT_EQ(leader.stats().backend_fetches, 1u);

  bool saw_coalesced_cause = false;
  for (const auto& span : spans.snapshot()) {
    if (span.cause == obs::SpanCause::kCoalesced) saw_coalesced_cause = true;
  }
  EXPECT_TRUE(saw_coalesced_cause)
      << "the collapse must be visible as a span cause";
}

// --- facade: transition-aware migration throttling ---------------------------

ProteusOptions facade_options() {
  ProteusOptions opt;
  opt.max_servers = 10;
  opt.per_server.memory_budget_bytes = 4 << 20;
  opt.per_server.auto_size_digest = false;
  opt.per_server.digest.num_counters = 1 << 14;
  opt.per_server.digest.counter_bits = 4;
  opt.per_server.digest.num_hashes = 4;
  opt.ttl = 10 * kSecond;
  return opt;
}

TEST(OverloadFacade, MigrationThrottleDefersWriteBacksUnderOverload) {
  core::MigrationThrottle::Options topt;
  topt.rate_per_sec = 0.0;  // defer every write-back while overloaded
  core::MigrationThrottle throttle(topt);
  throttle.set_overloaded(true);

  std::uint64_t backend_calls = 0;
  ProteusOptions opt = facade_options();
  opt.migration_throttle = &throttle;
  Proteus cluster(opt, [&](std::string_view key) {
    ++backend_calls;
    return "v:" + std::string(key);
  });

  for (int i = 0; i < 300; ++i) {
    cluster.get("page:" + std::to_string(i), kSecond);
  }
  ASSERT_EQ(backend_calls, 300u);
  cluster.resize(5, 2 * kSecond);

  // Old-location hits still serve correctly — no miss storm — but every
  // line-12 write-back is deferred, so a re-get hits the OLD location
  // again instead of the new primary.
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(cluster.get("page:" + std::to_string(i), 3 * kSecond),
              "v:page:" + std::to_string(i));
  }
  EXPECT_EQ(backend_calls, 300u) << "throttling must not cause a miss storm";
  ASSERT_GT(cluster.stats().old_server_hits, 0u);
  EXPECT_EQ(cluster.stats().migrations_deferred,
            cluster.stats().old_server_hits);
  const std::uint64_t first_pass_old_hits = cluster.stats().old_server_hits;

  for (int i = 0; i < 300; ++i) {
    cluster.get("page:" + std::to_string(i), 4 * kSecond);
  }
  EXPECT_EQ(cluster.stats().old_server_hits, 2 * first_pass_old_hits)
      << "deferred keys must keep serving from their old location";

  // Pressure clears: migration resumes and keys land on the new primary.
  throttle.set_overloaded(false);
  for (int i = 0; i < 300; ++i) {
    cluster.get("page:" + std::to_string(i), 5 * kSecond);
  }
  EXPECT_EQ(cluster.stats().migrations_deferred, 2 * first_pass_old_hits);
  EXPECT_EQ(backend_calls, 300u);
  const std::uint64_t hits_before = cluster.stats().new_server_hits;
  for (int i = 0; i < 300; ++i) {
    cluster.get("page:" + std::to_string(i), 6 * kSecond);
  }
  EXPECT_EQ(cluster.stats().new_server_hits, hits_before + 300)
      << "after the throttle lifts, keys migrate to the new primary";
}

}  // namespace
}  // namespace proteus
