#include "core/replicated_proteus.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace proteus {
namespace {

ReplicatedOptions small_options(int replicas = 2) {
  ReplicatedOptions opt;
  opt.max_servers = 10;
  opt.replicas = replicas;
  opt.per_server.memory_budget_bytes = 8 << 20;
  opt.per_server.auto_size_digest = false;
  opt.per_server.digest.num_counters = 1 << 14;
  opt.per_server.digest.counter_bits = 4;
  opt.per_server.digest.num_hashes = 4;
  opt.ttl = 10 * kSecond;
  return opt;
}

struct CountingBackend {
  std::uint64_t calls = 0;
  std::string operator()(std::string_view key) {
    ++calls;
    return "v:" + std::string(key);
  }
};

TEST(ReplicatedProteus, MissPathPopulatesAllReplicaLocations) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(3), std::ref(backend));
  EXPECT_EQ(cluster.get("page:1", 0), "v:page:1");
  EXPECT_EQ(backend.calls, 1u);
  for (int server : cluster.replica_servers("page:1")) {
    EXPECT_TRUE(cluster.server(server).contains("page:1", 0)) << server;
  }
}

TEST(ReplicatedProteus, SecondGetHitsPrimaryRing) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(), std::ref(backend));
  cluster.get("k", 0);
  cluster.get("k", 1);
  EXPECT_EQ(cluster.stats().primary_ring_hits, 1u);
  EXPECT_EQ(backend.calls, 1u);
}

TEST(ReplicatedProteus, SingleFailureServedByReplica) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(2), std::ref(backend));
  for (int i = 0; i < 400; ++i) cluster.get("page:" + std::to_string(i), 0);
  ASSERT_EQ(backend.calls, 400u);

  // Crash one server. Every key whose ring-0 copy lived there should still
  // be served warm from its ring-1 replica, with no backend traffic —
  // except the rare Eq. (3) conflicts where both replicas shared the
  // crashed server.
  cluster.fail_server(3);
  const auto before = backend.calls;
  for (int i = 0; i < 400; ++i) cluster.get("page:" + std::to_string(i), kSecond);
  EXPECT_GT(cluster.stats().replica_ring_hits, 10u);
  EXPECT_LE(backend.calls - before, 10u);  // conflicts only (~1/10 of 1/10)
}

TEST(ReplicatedProteus, ReadRepairAfterFailover) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(2), std::ref(backend));
  // Find a key whose two replicas live on different servers.
  std::string key;
  for (int i = 0; i < 200; ++i) {
    const std::string candidate = "page:" + std::to_string(i);
    const auto servers = cluster.replica_servers(candidate);
    if (servers[0] != servers[1]) {
      key = candidate;
      break;
    }
  }
  ASSERT_FALSE(key.empty());
  cluster.get(key, 0);
  const int ring0_server = cluster.replica_servers(key)[0];

  cluster.fail_server(ring0_server);
  cluster.get(key, kSecond);  // served by ring 1
  EXPECT_EQ(cluster.stats().replica_ring_hits, 1u);

  cluster.recover_server(ring0_server);
  cluster.get(key, 2 * kSecond);  // read-repairs the recovered server
  EXPECT_TRUE(cluster.server(ring0_server).contains(key, 2 * kSecond));
}

TEST(ReplicatedProteus, AllReplicasFailedFallsToBackend) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(2), std::ref(backend));
  cluster.get("k", 0);
  const auto servers = cluster.replica_servers("k");
  for (int s : servers) cluster.fail_server(s);
  const auto before = backend.calls;
  EXPECT_EQ(cluster.get("k", kSecond), "v:k");
  EXPECT_EQ(backend.calls, before + 1);
  EXPECT_GT(cluster.stats().failed_server_skips, 0u);
}

TEST(ReplicatedProteus, PutWritesAllReplicas) {
  ReplicatedProteus cluster(small_options(3),
                            [](std::string_view) { return std::string("db"); });
  cluster.put("k", "fresh", 0);
  std::set<int> distinct;
  for (int s : cluster.replica_servers("k")) {
    distinct.insert(s);
    auto v = const_cast<cache::CacheServer&>(cluster.server(s)).get("k", 0);
    ASSERT_TRUE(v.has_value()) << s;
    EXPECT_EQ(*v, "fresh");
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(ReplicatedProteus, SmoothResizePreservesHotDataPerRing) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(2), std::ref(backend));
  for (int i = 0; i < 300; ++i) cluster.get("page:" + std::to_string(i), 0);
  const auto before = backend.calls;
  cluster.resize(5, kSecond);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(cluster.get("page:" + std::to_string(i), 2 * kSecond),
              "v:page:" + std::to_string(i));
  }
  EXPECT_EQ(backend.calls, before) << "replicated shrink caused a miss storm";
}

TEST(ReplicatedProteus, ResizePlusFailureStillNoBackendStorm) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(2), std::ref(backend));
  for (int i = 0; i < 300; ++i) cluster.get("page:" + std::to_string(i), 0);
  cluster.resize(6, kSecond);
  cluster.fail_server(2);
  const auto before = backend.calls;
  for (int i = 0; i < 300; ++i) cluster.get("page:" + std::to_string(i), 2 * kSecond);
  // Redundancy covers the crash; the transition covers the remap. Only keys
  // whose surviving copies BOTH sat on the crashed server refetch.
  EXPECT_LT(backend.calls - before, 40u);
}

TEST(ReplicatedProteus, TransitionFinalizesAfterTtl) {
  ReplicatedProteus cluster(small_options(2),
                            [](std::string_view) { return std::string("v"); });
  cluster.resize(4, 0);
  EXPECT_TRUE(cluster.in_transition());
  cluster.tick(11 * kSecond);
  EXPECT_FALSE(cluster.in_transition());
  for (int i = 4; i < 10; ++i) {
    EXPECT_EQ(cluster.server(i).power_state(), cache::PowerState::kOff) << i;
  }
}

TEST(ReplicatedProteus, FailedServerExcludedFromResizePowerOn) {
  ReplicatedProteus cluster(small_options(2),
                            [](std::string_view) { return std::string("v"); });
  cluster.resize(4, 0);
  cluster.tick(11 * kSecond);
  cluster.fail_server(6);
  cluster.resize(8, 12 * kSecond);
  EXPECT_EQ(cluster.server(6).power_state(), cache::PowerState::kOff);
  EXPECT_NE(cluster.server(7).power_state(), cache::PowerState::kOff);
  // Requests mapping to the failed server fail over; nothing crashes.
  for (int i = 0; i < 100; ++i) cluster.get("k" + std::to_string(i), 13 * kSecond);
}

TEST(ReplicatedProteus, EraseRemovesEveryCopy) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(3), std::ref(backend));
  cluster.get("k", 0);
  cluster.erase("k", 1);
  for (int s : cluster.replica_servers("k")) {
    EXPECT_FALSE(cluster.server(s).contains("k", 1)) << s;
  }
  const auto before = backend.calls;
  cluster.get("k", 2);
  EXPECT_EQ(backend.calls, before + 1);
}

TEST(ReplicatedProteus, ConflictRateMatchesEq3) {
  ReplicatedProteus cluster(small_options(2),
                            [](std::string_view) { return std::string("v"); });
  int conflicts = 0;
  constexpr int kKeys = 5000;
  for (int i = 0; i < kKeys; ++i) {
    const auto servers = cluster.replica_servers("page:" + std::to_string(i));
    conflicts += servers[0] == servers[1];
  }
  // Eq. (3): P(conflict) = 1 - Pnc = 1/n = 0.1 at n=10.
  EXPECT_NEAR(static_cast<double>(conflicts) / kKeys, 0.1, 0.02);
}

TEST(ReplicatedProteus, SingleReplicaDegeneratesToPlainProteus) {
  CountingBackend backend;
  ReplicatedProteus cluster(small_options(1), std::ref(backend));
  for (int i = 0; i < 100; ++i) cluster.get("k" + std::to_string(i), 0);
  EXPECT_EQ(backend.calls, 100u);
  for (int i = 0; i < 100; ++i) cluster.get("k" + std::to_string(i), 1);
  EXPECT_EQ(backend.calls, 100u);
  EXPECT_EQ(cluster.stats().primary_ring_hits, 100u);
  EXPECT_EQ(cluster.stats().replica_ring_hits, 0u);
}

}  // namespace
}  // namespace proteus
