#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace proteus {
namespace {

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_us(0.5), 0.0);
  EXPECT_EQ(h.mean_us(), 0.0);
  EXPECT_EQ(h.max_us(), 0.0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.percentile_us(0.5), 1000.0, 1000.0 * 0.02);
  EXPECT_NEAR(h.percentile_us(1.0), 1000.0, 1000.0 * 0.02);
  EXPECT_EQ(h.max_us(), 1000.0);
  EXPECT_EQ(h.min_us(), 1000.0);
}

TEST(LatencyHistogram, BoundedRelativeError) {
  // With 64 sub-buckets per octave the representative value is within ~1.6%
  // of any recorded value.
  LatencyHistogram h;
  for (double v : {3.0, 47.0, 999.0, 12'345.0, 8'000'000.0}) {
    LatencyHistogram single;
    single.record(v);
    EXPECT_NEAR(single.percentile_us(1.0), v, v * 0.02) << v;
  }
  (void)h;
}

TEST(LatencyHistogram, PercentilesMatchExactOnUniformData) {
  LatencyHistogram h;
  std::vector<double> values;
  Rng rng(11);
  for (int i = 0; i < 100'000; ++i) {
    const double v = 100.0 + rng.next_double() * 900'000.0;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.percentile_us(q), exact, exact * 0.05) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  Rng rng(12);
  for (int i = 0; i < 10'000; ++i) {
    const double v = 1.0 + rng.next_double() * 1e6;
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Summation order differs between the two paths; allow fp rounding.
  EXPECT_NEAR(a.mean_us(), combined.mean_us(), combined.mean_us() * 1e-12);
  for (double q : {0.1, 0.5, 0.9, 0.999}) {
    EXPECT_DOUBLE_EQ(a.percentile_us(q), combined.percentile_us(q));
  }
}

TEST(LatencyHistogram, ClampsSubMicrosecondValues) {
  LatencyHistogram h;
  h.record(0.0);
  h.record(0.25);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.percentile_us(1.0), 1.0);
}

TEST(LatencyHistogram, ClearResets) {
  LatencyHistogram h;
  h.record(500.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_us(0.999), 0.0);
}

TEST(LatencyHistogram, MeanIsExact) {
  LatencyHistogram h;
  h.record(100.0);
  h.record(300.0);
  EXPECT_DOUBLE_EQ(h.mean_us(), 200.0);
}

TEST(LatencyHistogram, CountAtOrAboveThreshold) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(1'000.0);    // 1 ms
  for (int i = 0; i < 10; ++i) h.record(600'000.0);  // 0.6 s, over the bound
  EXPECT_EQ(h.count_at_or_above(500'000.0), 10u);
  EXPECT_NEAR(h.fraction_at_or_above(500'000.0), 0.1, 1e-12);
  EXPECT_EQ(h.count_at_or_above(0.5), 100u);  // everything
  EXPECT_EQ(h.count_at_or_above(1e12), 0u);   // nothing
}

TEST(LatencyHistogram, FractionAboveEmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.fraction_at_or_above(1000.0), 0.0);
}

// --- the quantile()/mean()/count() accessor surface (src/obs consumers) ------

TEST(LatencyHistogram, QuantileAliasesPercentile) {
  LatencyHistogram h;
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) h.record(64.0 + rng.next_double() * 1e5);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), h.percentile_us(q)) << q;
  }
  EXPECT_DOUBLE_EQ(h.mean(), h.mean_us());
}

TEST(LatencyHistogram, QuantileAccuracyWithinBucketBound) {
  // The observability layer quotes p50/p99/p999 from this estimator; verify
  // the documented bound — <= 0.8% relative error vs the exact order
  // statistic — on log-uniform data spanning 64 us .. ~16 s (values below
  // 64 us lose extra precision to integer truncation, hence the floor).
  LatencyHistogram h;
  std::vector<double> values;
  Rng rng(14);
  for (int i = 0; i < 200'000; ++i) {
    const double v = 64.0 * std::pow(2.0, rng.next_double() * 18.0);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = values[rank == 0 ? 0 : rank - 1];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.008) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergedQuantilesStayAccurate) {
  // Shard-and-merge (how multi-threaded components aggregate) must not
  // degrade the quantile estimate: merged buckets are exact sums.
  constexpr int kShards = 8;
  std::vector<LatencyHistogram> shards(kShards);
  LatencyHistogram merged;
  std::vector<double> values;
  Rng rng(15);
  for (int i = 0; i < 80'000; ++i) {
    const double v = 64.0 * std::pow(2.0, rng.next_double() * 12.0);
    values.push_back(v);
    shards[static_cast<std::size_t>(i % kShards)].record(v);
  }
  for (const LatencyHistogram& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), values.size());
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    EXPECT_NEAR(merged.quantile(q), exact, exact * 0.008) << "q=" << q;
  }
}

}  // namespace
}  // namespace proteus
