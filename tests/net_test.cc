// End-to-end socket tests: run the memcached-compatible daemon on an
// ephemeral loopback port and drive it with raw sockets, exactly as an
// unmodified client library would.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/binary_protocol.h"
#include "net/memcache_daemon.h"
#include "net/metrics_http.h"
#include "obs/tsdb/tsdb.h"

namespace proteus::net {
namespace {

class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  // Bounds every subsequent read: a server that never answers turns into a
  // failed read instead of a hung test.
  void set_recv_timeout(int seconds) {
    timeval tv{};
    tv.tv_sec = seconds;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  void send(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  // Reads until `expected` bytes arrive (blocking socket).
  std::string recv_exact(std::size_t expected) {
    std::string out;
    char buf[4096];
    while (out.size() < expected) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  // Reads until the buffer ends with `terminator`.
  std::string recv_until(std::string_view terminator) {
    std::string out;
    char buf[4096];
    while (out.size() < terminator.size() ||
           out.compare(out.size() - terminator.size(), terminator.size(),
                       terminator) != 0) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class DaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    cache::CacheConfig cfg;
    cfg.memory_budget_bytes = 8 << 20;
    daemon_ = std::make_unique<MemcacheDaemon>(cfg, 0);
    ASSERT_TRUE(daemon_->ok());
    thread_ = std::thread([this] { daemon_->run(); });
  }

  void TearDown() override {
    daemon_->stop();
    thread_.join();
  }

  std::unique_ptr<MemcacheDaemon> daemon_;
  std::thread thread_;
};

TEST_F(DaemonFixture, TextProtocolOverRealSocket) {
  Client client(daemon_->port());
  ASSERT_TRUE(client.connected());
  client.send("set greeting 3 0 5\r\nhello\r\n");
  EXPECT_EQ(client.recv_until("\r\n"), "STORED\r\n");
  client.send("get greeting\r\n");
  EXPECT_EQ(client.recv_until("END\r\n"),
            "VALUE greeting 3 5\r\nhello\r\nEND\r\n");
}

TEST_F(DaemonFixture, BinaryProtocolOverRealSocket) {
  Client client(daemon_->port());
  ASSERT_TRUE(client.connected());

  cache::binary::Frame set;
  set.opcode = cache::binary::Opcode::kSet;
  set.key = "bin";
  set.value = "payload";
  cache::binary::put_u32(set.extras, 9);
  cache::binary::put_u32(set.extras, 0);
  client.send(cache::binary::encode_frame(set, cache::binary::kRequestMagic));
  std::string reply = client.recv_exact(cache::binary::kHeaderSize);
  ASSERT_GE(reply.size(), cache::binary::kHeaderSize);
  EXPECT_EQ(static_cast<std::uint8_t>(reply[0]), cache::binary::kResponseMagic);
  EXPECT_EQ(cache::binary::get_u16(reply, 6), 0u);  // status OK

  cache::binary::Frame get;
  get.opcode = cache::binary::Opcode::kGet;
  get.key = "bin";
  client.send(cache::binary::encode_frame(get, cache::binary::kRequestMagic));
  // Header + flags extras(4) + "payload"(7).
  const std::string got =
      client.recv_exact(cache::binary::kHeaderSize + 4 + 7);
  ASSERT_EQ(got.size(), cache::binary::kHeaderSize + 4 + 7);
  EXPECT_EQ(cache::binary::get_u32(got, 8), 11u);  // total body
  EXPECT_EQ(got.substr(cache::binary::kHeaderSize + 4), "payload");
  EXPECT_EQ(cache::binary::get_u32(got, cache::binary::kHeaderSize), 9u);
}

TEST_F(DaemonFixture, TextAndBinaryClientsShareOneCache) {
  Client text(daemon_->port());
  ASSERT_TRUE(text.connected());
  text.send("set shared 0 0 4\r\ndata\r\n");
  EXPECT_EQ(text.recv_until("\r\n"), "STORED\r\n");

  Client binary(daemon_->port());
  ASSERT_TRUE(binary.connected());
  cache::binary::Frame get;
  get.opcode = cache::binary::Opcode::kGet;
  get.key = "shared";
  binary.send(cache::binary::encode_frame(get, cache::binary::kRequestMagic));
  const std::string got =
      binary.recv_exact(cache::binary::kHeaderSize + 4 + 4);
  ASSERT_EQ(got.size(), cache::binary::kHeaderSize + 4 + 4);
  EXPECT_EQ(got.substr(cache::binary::kHeaderSize + 4), "data");
}

TEST_F(DaemonFixture, DigestSnapshotThroughRealSocket) {
  Client client(daemon_->port());
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 20; ++i) {
    client.send("set page:" + std::to_string(i) + " 0 0 1\r\nx\r\n");
    EXPECT_EQ(client.recv_until("\r\n"), "STORED\r\n");
  }
  client.send("get SET_BLOOM_FILTER\r\n");
  client.recv_until("END\r\n");
  client.send("get BLOOM_FILTER\r\n");
  const std::string reply = client.recv_until("END\r\n");
  // Extract the blob after the VALUE header line.
  const std::size_t header_end = reply.find("\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::size_t size_pos = reply.rfind(' ', header_end);
  const std::size_t size = std::stoul(reply.substr(size_pos + 1));
  const std::string blob = reply.substr(header_end + 2, size);
  const bloom::BloomFilter digest = cache::decode_digest(blob);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(digest.maybe_contains("page:" + std::to_string(i))) << i;
  }
}

TEST_F(DaemonFixture, ManySequentialConnections) {
  for (int c = 0; c < 20; ++c) {
    Client client(daemon_->port());
    ASSERT_TRUE(client.connected());
    client.send("version\r\n");
    EXPECT_EQ(client.recv_until("\r\n"), "VERSION proteus-1.0\r\n");
  }
  // All data persists across connections in the shared cache.
  EXPECT_GE(daemon_->connections_accepted(), 20u);
}

TEST(MultiThreadedDaemon, ConcurrentClientsShareOneConsistentCache) {
  cache::CacheConfig cfg;
  cfg.memory_budget_bytes = 16 << 20;
  MemcacheDaemon daemon(cfg, 0, monotonic_now, /*threads=*/4);
  ASSERT_TRUE(daemon.ok());
  EXPECT_EQ(daemon.threads(), 4);
  std::thread server([&] { daemon.run(); });

  // Hammer from several client threads, disjoint key ranges.
  constexpr int kClients = 8;
  constexpr int kKeysPerClient = 200;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(daemon.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kKeysPerClient; ++i) {
        const std::string key =
            "c" + std::to_string(c) + ":" + std::to_string(i);
        client.send("set " + key + " 0 0 " + std::to_string(key.size()) +
                    "\r\n" + key + "\r\n");
        if (client.recv_until("\r\n") != "STORED\r\n") ++failures;
      }
      for (int i = 0; i < kKeysPerClient; ++i) {
        const std::string key =
            "c" + std::to_string(c) + ":" + std::to_string(i);
        client.send("get " + key + "\r\n");
        const std::string reply = client.recv_until("END\r\n");
        if (reply.find(key + "\r\nEND") == std::string::npos) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  daemon.stop();
  server.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(daemon.cache().item_count(),
            static_cast<std::size_t>(kClients) * kKeysPerClient);
  // The merged digest saw every insertion exactly once.
  EXPECT_TRUE(daemon.cache().digest_maybe_contains("c0:0"));
  EXPECT_TRUE(daemon.cache().digest_maybe_contains("c7:199"));
}

TEST_F(DaemonFixture, QuitClosesConnection) {
  Client client(daemon_->port());
  ASSERT_TRUE(client.connected());
  client.send("quit\r\n");
  // Server closes: read returns EOF (empty).
  EXPECT_EQ(client.recv_exact(1), "");
}

// --- the metrics/health HTTP endpoint's protocol edges -----------------------

// A running exposition server with trivial render callbacks and a settable
// health answer.
class HttpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    health_code_ = 200;
    http_ = std::make_unique<MetricsHttpServer>(
        0, [] { return std::string("metric 1\n"); }, nullptr, nullptr,
        [this] {
          return std::make_pair(health_code_.load(),
                                std::string("{\"status\":\"x\"}\n"));
        });
    ASSERT_TRUE(http_->ok());
    thread_ = std::thread([this] { http_->run(); });
  }

  void TearDown() override {
    http_->stop();
    thread_.join();
  }

  // Sends `raw` verbatim and reads to EOF with a receive deadline, so a
  // half-handled connection fails the test instead of hanging it.
  std::string roundtrip(const std::string& raw) {
    Client client(http_->port());
    EXPECT_TRUE(client.connected());
    client.set_recv_timeout(5);
    client.send(raw);
    return client.recv_exact(1 << 20);  // reads until EOF
  }

  std::atomic<int> health_code_{200};
  std::unique_ptr<MetricsHttpServer> http_;
  std::thread thread_;
};

TEST_F(HttpFixture, UnknownPathGets404WithContentLength) {
  const std::string reply = roundtrip("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.0 404 Not Found"), std::string::npos);
  // The 404 must carry a Content-Length matching its body so HTTP/1.0
  // clients that trust the header (instead of reading to EOF) see the
  // whole error page.
  const std::size_t cl = reply.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos);
  const std::size_t declared = static_cast<std::size_t>(
      std::atoll(reply.c_str() + cl + std::strlen("Content-Length: ")));
  const std::size_t body_at = reply.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(reply.size() - (body_at + 4), declared);
  EXPECT_GT(declared, 0u);
}

TEST_F(HttpFixture, SimpleHttp09RequestIsAnsweredNotHalfHandled) {
  // An HTTP/0.9 simple request is just the request line — no headers, no
  // blank line ever arrives. Waiting for \r\n\r\n would wedge the
  // connection forever; the server must answer from the line alone.
  const std::string reply = roundtrip("GET /metrics\r\n");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("metric 1"), std::string::npos);
}

TEST_F(HttpFixture, HealthRouteReflectsCallbackCode) {
  std::string reply = roundtrip("GET /health HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("application/json"), std::string::npos);
  EXPECT_NE(reply.find("{\"status\":\"x\"}"), std::string::npos);

  health_code_.store(503);
  reply = roundtrip("GET /health HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.0 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(reply.find("{\"status\":\"x\"}"), std::string::npos);
}

TEST_F(HttpFixture, MetricsNameFilterWithoutPrefixFnFallsBack) {
  // The fixture registers no PrefixFn, so `?name=` degrades to the full
  // render instead of 404ing a filtered scrape.
  const std::string reply = roundtrip("GET /metrics?name=met HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("metric 1"), std::string::npos);
}

TEST_F(HttpFixture, TimeseriesWithoutCallbackIs404) {
  const std::string reply =
      roundtrip("GET /timeseries?metric=x HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("404 Not Found"), std::string::npos);
  EXPECT_NE(reply.find("timeseries not enabled"), std::string::npos);
}

// Filtered /metrics and /timeseries wired the way proteus-cached wires
// them: prefix filter backed by the registry snapshot, timeseries backed
// by a store.
class HttpRoutesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<obs::TimeSeriesStore>();
    store_->append(kSecond, "reqs_rate", 10.0);
    store_->append(2 * kSecond, "reqs_rate", 12.0);
    http_ = std::make_unique<MetricsHttpServer>(
        0, [] { return std::string("alpha_total 1\nbeta_total 2\n"); });
    http_->set_metrics_prefix([](std::string_view prefix) {
      const std::string all = "alpha_total 1\nbeta_total 2\n";
      std::string out;
      std::size_t pos = 0;
      while (pos < all.size()) {
        const std::size_t eol = all.find('\n', pos);
        const std::string_view line =
            std::string_view(all).substr(pos, eol - pos + 1);
        if (line.substr(0, prefix.size()) == prefix) out += line;
        pos = eol + 1;
      }
      return out;
    });
    http_->set_timeseries(
        [this](std::string_view metric, SimTime since, SimTime step) {
          if (metric.empty()) return store_->index_json();
          return store_->query_json(metric, since, step);
        });
    ASSERT_TRUE(http_->ok());
    thread_ = std::thread([this] { http_->run(); });
  }

  void TearDown() override {
    http_->stop();
    thread_.join();
  }

  std::string roundtrip(const std::string& raw) {
    Client client(http_->port());
    EXPECT_TRUE(client.connected());
    client.set_recv_timeout(5);
    client.send(raw);
    return client.recv_exact(1 << 20);
  }

  std::unique_ptr<obs::TimeSeriesStore> store_;
  std::unique_ptr<MetricsHttpServer> http_;
  std::thread thread_;
};

TEST_F(HttpRoutesFixture, MetricsNameFilterRestrictsFamilies) {
  const std::string reply =
      roundtrip("GET /metrics?name=alpha HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("alpha_total 1"), std::string::npos);
  EXPECT_EQ(reply.find("beta_total"), std::string::npos);
}

TEST_F(HttpRoutesFixture, MetricsNameFilterZeroMatchesIsEmpty200) {
  // Zero matches mirrors a filtered Prometheus scrape: success, no
  // families — NOT a 404 (the route exists, the set is just empty).
  const std::string reply =
      roundtrip("GET /metrics?name=nosuch HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  const std::size_t body_at = reply.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(reply.substr(body_at + 4), "");
  EXPECT_NE(reply.find("Content-Length: 0"), std::string::npos);
}

TEST_F(HttpRoutesFixture, TimeseriesKnownUnknownAndIndex) {
  std::string reply =
      roundtrip("GET /timeseries?metric=reqs_rate HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("application/json"), std::string::npos);
  EXPECT_NE(reply.find("\"metric\":\"reqs_rate\""), std::string::npos);

  reply = roundtrip("GET /timeseries?metric=nosuch HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("404 Not Found"), std::string::npos);
  EXPECT_NE(reply.find("unknown metric"), std::string::npos);

  reply = roundtrip("GET /timeseries HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"metrics\":[\"reqs_rate\"]"), std::string::npos);
}

TEST(MetricsHttpSlowLoris, DrippedRequestGets408PastReadDeadline) {
  // A peer that drips one byte at a time defeats the idle reaper (every
  // drip refreshes activity); the read deadline bounds it wall-clock.
  MetricsHttpServer::Options options;
  options.read_deadline = 100 * kMillisecond;
  MetricsHttpServer http(
      0, [] { return std::string("m 1\n"); }, nullptr, nullptr, nullptr,
      options);
  ASSERT_TRUE(http.ok());
  std::thread t([&http] { http.run(); });
  Client client(http.port());
  ASSERT_TRUE(client.connected());
  client.set_recv_timeout(5);
  client.send("GET /metr");  // incomplete forever
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  client.send("i");  // the drip that trips the deadline check
  const std::string reply = client.recv_exact(1 << 20);
  EXPECT_NE(reply.find("408 Request Timeout"), std::string::npos);
  EXPECT_NE(reply.find("read deadline"), std::string::npos);
  http.stop();
  t.join();
}

TEST(MetricsHttpSlowLoris, CompleteRequestWithinDeadlineStillServed) {
  MetricsHttpServer::Options options;
  options.read_deadline = 5 * kSecond;
  MetricsHttpServer http(
      0, [] { return std::string("m 1\n"); }, nullptr, nullptr, nullptr,
      options);
  ASSERT_TRUE(http.ok());
  std::thread t([&http] { http.run(); });
  Client client(http.port());
  ASSERT_TRUE(client.connected());
  client.set_recv_timeout(5);
  client.send("GET /metrics HT");  // split across two writes, both prompt
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.send("TP/1.0\r\n\r\n");
  const std::string reply = client.recv_exact(1 << 20);
  EXPECT_NE(reply.find("200 OK"), std::string::npos);
  EXPECT_NE(reply.find("m 1"), std::string::npos);
  http.stop();
  t.join();
}

TEST(MetricsHttpNoHealth, HealthWithoutCallbackIs404) {
  MetricsHttpServer http(0, [] { return std::string("m 1\n"); });
  ASSERT_TRUE(http.ok());
  std::thread t([&http] { http.run(); });
  Client client(http.port());
  ASSERT_TRUE(client.connected());
  client.set_recv_timeout(5);
  client.send("GET /health HTTP/1.0\r\n\r\n");
  const std::string reply = client.recv_exact(1 << 20);
  EXPECT_NE(reply.find("404"), std::string::npos);
  http.stop();
  t.join();
}

}  // namespace
}  // namespace proteus::net
