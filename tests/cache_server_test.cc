#include "cache/cache_server.h"

#include <gtest/gtest.h>

#include <string>

#include "common/hash.h"

namespace proteus::cache {
namespace {

CacheConfig small_config(std::size_t budget = 1 << 20) {
  CacheConfig cfg;
  cfg.memory_budget_bytes = budget;
  cfg.auto_size_digest = false;
  cfg.digest.num_counters = 1 << 14;
  cfg.digest.counter_bits = 4;
  cfg.digest.num_hashes = 4;
  return cfg;
}

TEST(CacheServer, SetGetRoundTrip) {
  CacheServer cache(small_config());
  cache.set("page:1", "hello", 0);
  auto v = cache.get("page:1", 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(CacheServer, MissOnAbsentKey) {
  CacheServer cache(small_config());
  EXPECT_FALSE(cache.get("nope", 0).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheServer, OverwriteReplacesValue) {
  CacheServer cache(small_config());
  cache.set("k", "v1", 0);
  cache.set("k", "v2", 1);
  EXPECT_EQ(*cache.get("k", 2), "v2");
  EXPECT_EQ(cache.item_count(), 1u);
}

TEST(CacheServer, LruEvictionOrder) {
  CacheConfig cfg = small_config();
  cfg.per_item_overhead = 0;
  // Budget for ~3 items of charge (1-char key + 10-byte charge).
  cfg.memory_budget_bytes = 3 * 11;
  CacheServer cache(cfg);
  cache.set("a", "x", 0, 10);
  cache.set("b", "x", 1, 10);
  cache.set("c", "x", 2, 10);
  // Touch "a" so "b" becomes LRU; inserting "d" must evict "b".
  EXPECT_TRUE(cache.get("a", 3).has_value());
  cache.set("d", "x", 4, 10);
  EXPECT_TRUE(cache.contains("a", 5));
  EXPECT_FALSE(cache.contains("b", 5));
  EXPECT_TRUE(cache.contains("c", 5));
  EXPECT_TRUE(cache.contains("d", 5));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheServer, BudgetIsRespected) {
  CacheConfig cfg = small_config(1000);
  cfg.per_item_overhead = 0;
  CacheServer cache(cfg);
  for (int i = 0; i < 100; ++i) {
    cache.set("key:" + std::to_string(i), "", 0, 90);
  }
  EXPECT_LE(cache.bytes_used(), 1000u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(CacheServer, OversizedItemIsRejected) {
  CacheConfig cfg = small_config(100);
  CacheServer cache(cfg);
  cache.set("big", "", 0, 1000);
  EXPECT_EQ(cache.item_count(), 0u);
  EXPECT_FALSE(cache.contains("big", 0));
}

TEST(CacheServer, ChargeOverrideAccountsSyntheticSize) {
  CacheConfig cfg = small_config();
  cfg.per_item_overhead = 0;
  CacheServer cache(cfg);
  cache.set("k", "tiny", 0, 4096);
  EXPECT_EQ(cache.bytes_used(), 1 + 4096u);
}

TEST(CacheServer, TtlExpiryOnAccess) {
  CacheConfig cfg = small_config();
  cfg.item_ttl = 10 * kSecond;
  CacheServer cache(cfg);
  cache.set("k", "v", 0);
  EXPECT_TRUE(cache.get("k", 5 * kSecond).has_value());   // refreshes
  EXPECT_TRUE(cache.get("k", 14 * kSecond).has_value());  // within ttl of touch
  EXPECT_FALSE(cache.get("k", 30 * kSecond).has_value()); // expired
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.item_count(), 0u);
}

TEST(CacheServer, EraseRemovesItem) {
  CacheServer cache(small_config());
  cache.set("k", "v", 0);
  EXPECT_TRUE(cache.erase("k"));
  EXPECT_FALSE(cache.erase("k"));
  EXPECT_FALSE(cache.contains("k", 0));
  EXPECT_EQ(cache.stats().deletes, 1u);
}

TEST(CacheServer, FlushClearsEverything) {
  CacheServer cache(small_config());
  for (int i = 0; i < 50; ++i) cache.set("k" + std::to_string(i), "v", 0);
  cache.flush();
  EXPECT_EQ(cache.item_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.digest().nonzero_counters(), 0u);
}

// --- digest consistency (the do_item_link/unlink hook, §V-3) ---------------

TEST(CacheServer, DigestTracksResidentKeys) {
  CacheServer cache(small_config());
  for (int i = 0; i < 200; ++i) cache.set("k" + std::to_string(i), "v", 0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(cache.digest().maybe_contains("k" + std::to_string(i))) << i;
  }
  for (int i = 0; i < 100; ++i) cache.erase("k" + std::to_string(i));
  // Removed keys leave the digest (up to residual false positives).
  int still_positive = 0;
  for (int i = 0; i < 100; ++i) {
    still_positive += cache.digest().maybe_contains("k" + std::to_string(i));
  }
  EXPECT_LT(still_positive, 5);
}

TEST(CacheServer, DigestTracksEvictions) {
  CacheConfig cfg = small_config(500);
  cfg.per_item_overhead = 0;
  CacheServer cache(cfg);
  cache.set("victim", "", 0, 400);
  cache.set("newer", "", 1, 400);  // evicts "victim"
  EXPECT_FALSE(cache.contains("victim", 1));
  EXPECT_FALSE(cache.digest().maybe_contains("victim"));
  EXPECT_TRUE(cache.digest().maybe_contains("newer"));
}

TEST(CacheServer, SnapshotDigestMatchesContent) {
  CacheServer cache(small_config());
  for (int i = 0; i < 100; ++i) cache.set("k" + std::to_string(i), "v", 0);
  bloom::BloomFilter snap = cache.snapshot_digest();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(snap.maybe_contains("k" + std::to_string(i)));
  }
}

// --- reserved protocol keys (§V-3) ------------------------------------------

TEST(CacheServer, BloomFilterProtocolKeys) {
  CacheServer cache(small_config());
  for (int i = 0; i < 64; ++i) cache.set("k" + std::to_string(i), "v", 0);

  auto ok = cache.get(kSetBloomFilterKey, 0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, "OK");

  auto blob = cache.get(kGetBloomFilterKey, 0);
  ASSERT_TRUE(blob.has_value());
  const bloom::BloomFilter decoded = decode_digest(*blob);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(decoded.maybe_contains("k" + std::to_string(i)));
  }
}

TEST(CacheServer, SnapshotIsStableUntilRetaken) {
  CacheServer cache(small_config());
  cache.set("early", "v", 0);
  cache.get(kSetBloomFilterKey, 0);  // snapshot now
  cache.set("late", "v", 1);
  const bloom::BloomFilter snap = decode_digest(*cache.get(kGetBloomFilterKey, 1));
  EXPECT_TRUE(snap.maybe_contains("early"));
  EXPECT_FALSE(snap.maybe_contains("late"));
  // Re-snapshot picks up the new key.
  cache.get(kSetBloomFilterKey, 2);
  const bloom::BloomFilter snap2 = decode_digest(*cache.get(kGetBloomFilterKey, 2));
  EXPECT_TRUE(snap2.maybe_contains("late"));
}

TEST(CacheServer, ProtocolKeysDoNotPolluteStats) {
  CacheServer cache(small_config());
  cache.get(kSetBloomFilterKey, 0);
  cache.get(kGetBloomFilterKey, 0);
  EXPECT_EQ(cache.stats().gets, 0u);
}

TEST(CacheServer, DigestCodecRoundTrip) {
  bloom::BloomFilter bf(2048, 4, 77);
  for (int i = 0; i < 100; ++i) bf.insert("x" + std::to_string(i));
  const bloom::BloomFilter decoded = decode_digest(encode_digest(bf));
  EXPECT_EQ(bf, decoded);
}

// --- power states ------------------------------------------------------------

TEST(CacheServer, PowerCycleDropsData) {
  CacheServer cache(small_config());
  cache.set("k", "v", 0);
  cache.power_off();
  EXPECT_EQ(cache.power_state(), PowerState::kOff);
  cache.power_on();
  EXPECT_EQ(cache.power_state(), PowerState::kActive);
  EXPECT_FALSE(cache.contains("k", 0));
  EXPECT_EQ(cache.digest().nonzero_counters(), 0u);
}

TEST(CacheServer, DrainingServerStillServes) {
  CacheServer cache(small_config());
  cache.set("k", "v", 0);
  cache.begin_draining();
  EXPECT_EQ(cache.power_state(), PowerState::kDraining);
  EXPECT_TRUE(cache.get("k", 1).has_value());
}

TEST(CacheServer, HotItemCount) {
  CacheServer cache(small_config());
  cache.set("old", "v", 0);
  cache.set("new", "v", 100 * kSecond);
  EXPECT_EQ(cache.hot_item_count(100 * kSecond, 10 * kSecond), 1u);
  EXPECT_EQ(cache.hot_item_count(100 * kSecond, 200 * kSecond), 2u);
}

TEST(CacheServer, CasAssignedMonotonically) {
  CacheServer cache(small_config());
  cache.set("a", "1", 0);
  cache.set("b", "1", 0);
  const auto cas_a = cache.cas_of("a", 0);
  const auto cas_b = cache.cas_of("b", 0);
  EXPECT_GT(cas_a, 0u);
  EXPECT_GT(cas_b, cas_a);
  cache.set("a", "2", 1);  // overwrite bumps the version
  EXPECT_GT(cache.cas_of("a", 1), cas_b);
  EXPECT_EQ(cache.cas_of("absent", 0), 0u);
}

TEST(CacheServer, CompareAndSwapSemantics) {
  CacheServer cache(small_config());
  cache.set("k", "v1", 0);
  const auto cas = cache.cas_of("k", 0);
  EXPECT_EQ(cache.compare_and_swap("k", "v2", 1, cas),
            CacheServer::CasResult::kStored);
  EXPECT_EQ(*cache.get("k", 2), "v2");
  // The old version no longer matches.
  EXPECT_EQ(cache.compare_and_swap("k", "v3", 3, cas),
            CacheServer::CasResult::kExists);
  EXPECT_EQ(*cache.get("k", 4), "v2");
  EXPECT_EQ(cache.compare_and_swap("ghost", "x", 5, 1),
            CacheServer::CasResult::kNotFound);
}

TEST(CacheServer, ExpireIdleSweepsColdTail) {
  CacheServer cache(small_config());
  cache.set("cold1", "v", 0);
  cache.set("cold2", "v", kSecond);
  cache.set("hot", "v", 20 * kSecond);
  // At t=30s with a 15 s idle limit, only "hot" (idle 10 s) survives.
  EXPECT_EQ(cache.expire_idle(30 * kSecond, 15 * kSecond), 2u);
  EXPECT_FALSE(cache.contains("cold1", 30 * kSecond));
  EXPECT_FALSE(cache.contains("cold2", 30 * kSecond));
  EXPECT_TRUE(cache.contains("hot", 30 * kSecond));
  EXPECT_EQ(cache.stats().expirations, 2u);
  // Idempotent.
  EXPECT_EQ(cache.expire_idle(30 * kSecond, 15 * kSecond), 0u);
}

TEST(CacheServer, ExpireIdleRespectsLruRefresh) {
  CacheServer cache(small_config());
  cache.set("a", "v", 0);
  cache.set("b", "v", 0);
  cache.get("a", 20 * kSecond);  // refresh a
  EXPECT_EQ(cache.expire_idle(25 * kSecond, 10 * kSecond), 1u);
  EXPECT_TRUE(cache.contains("a", 25 * kSecond));
  EXPECT_FALSE(cache.contains("b", 25 * kSecond));
}

// --- segmented LRU -----------------------------------------------------------

CacheConfig segmented_config(std::size_t budget_items) {
  CacheConfig cfg = small_config(budget_items * 12);
  cfg.per_item_overhead = 0;
  cfg.segmented_lru = true;
  cfg.protected_ratio = 0.8;
  return cfg;  // 2-char keys with a 10-byte charge override -> 12 B/item
}

TEST(CacheServer, SegmentedLruIsScanResistant) {
  // Hot set of 5 keys, each hit twice (promoted to protected); then a scan
  // of 100 one-touch keys. Plain LRU flushes the hot set; segmented keeps it.
  const auto run = [](bool segmented) {
    CacheConfig cfg = segmented_config(10);
    cfg.segmented_lru = segmented;
    CacheServer cache(cfg);
    for (int i = 0; i < 5; ++i) {
      cache.set("hot" + std::to_string(i), "", 0, 10);
    }
    for (int i = 0; i < 5; ++i) {
      cache.get("hot" + std::to_string(i), 1);  // promote
    }
    for (int i = 0; i < 100; ++i) {
      cache.set("scan" + std::to_string(i), "", 2, 10);
    }
    int hot_survivors = 0;
    for (int i = 0; i < 5; ++i) {
      hot_survivors += cache.contains("hot" + std::to_string(i), 3);
    }
    return hot_survivors;
  };
  EXPECT_EQ(run(false), 0) << "plain LRU should have flushed the hot set";
  EXPECT_EQ(run(true), 5) << "segmented LRU should protect the hot set";
}

TEST(CacheServer, ProtectedSegmentIsCapped) {
  // Budget 100 bytes, protected cap 80: promoting 10 x 10-byte items must
  // demote the overflow back to probation rather than exceed the cap.
  CacheServer cache(segmented_config(10));
  for (int i = 0; i < 10; ++i) cache.set("k" + std::to_string(i), "", 0, 10);
  for (int i = 0; i < 10; ++i) cache.get("k" + std::to_string(i), 1);
  // All 10 items still resident (no eviction was needed)...
  EXPECT_EQ(cache.item_count(), 10u);
  // ...and a scan can displace at most the unprotected 20%.
  for (int i = 0; i < 50; ++i) cache.set("s" + std::to_string(i), "", 2, 10);
  int survivors = 0;
  for (int i = 0; i < 10; ++i) {
    survivors += cache.contains("k" + std::to_string(i), 3);
  }
  EXPECT_GE(survivors, 8);
}

TEST(CacheServer, SegmentedEvictionFallsBackToProtected) {
  // When probation is empty, eviction must drain the protected tail rather
  // than refuse to store.
  CacheServer cache(segmented_config(5));
  for (int i = 0; i < 5; ++i) cache.set("k" + std::to_string(i), "", 0, 10);
  for (int i = 0; i < 5; ++i) cache.get("k" + std::to_string(i), 1);
  // Everything is protected (50 <= 0.8*50? no: cap is 40, so one was
  // demoted). Insert new items; the cache must keep functioning.
  for (int i = 0; i < 3; ++i) cache.set("n" + std::to_string(i), "", 2, 10);
  EXPECT_LE(cache.bytes_used(), cache.memory_budget());
  EXPECT_TRUE(cache.contains("n2", 3));
}

TEST(CacheServer, SegmentedDigestStaysConsistent) {
  CacheServer cache(segmented_config(10));
  for (int i = 0; i < 20; ++i) cache.set("k" + std::to_string(i), "", 0, 10);
  for (int i = 10; i < 20; ++i) cache.get("k" + std::to_string(i), 1);
  for (int i = 0; i < 30; ++i) cache.set("x" + std::to_string(i), "", 2, 10);
  // Digest answers yes for every resident key regardless of segment.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (cache.contains(key, 3)) {
      EXPECT_TRUE(cache.digest().maybe_contains(key)) << key;
    }
  }
}

TEST(CacheServer, SegmentedExpireIdleSweepsBothSegments) {
  CacheConfig cfg = segmented_config(10);
  CacheServer cache(cfg);
  cache.set("prot", "", 0, 10);
  cache.get("prot", 1);  // promoted at t=1
  cache.set("prob", "", 5 * kSecond, 10);
  // At t=40s with a 20s limit both are idle.
  EXPECT_EQ(cache.expire_idle(40 * kSecond, 20 * kSecond), 2u);
  EXPECT_EQ(cache.item_count(), 0u);
}

TEST(CacheServer, AutoSizedDigestSatisfiesPaperBounds) {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 64 << 20;  // ~16k 4KB objects
  cfg.auto_size_digest = true;
  CacheServer cache(cfg);
  const auto& params = cache.config().digest;
  EXPECT_EQ(params.num_hashes, 4u);
  EXPECT_LE(bloom::false_positive_rate(params.expected_keys, params.num_hashes,
                                       params.num_counters),
            1e-4);
}

TEST(CacheServer, ServeTimeVerifyDropsCorruptStampedItems) {
  CacheServer cache(small_config());
  const std::string value = "payload-guarded-by-crc32c";
  cache.set("ck", value, 0, /*charge=*/0, /*flags=*/0, crc32c(value));
  EXPECT_EQ(cache.checksum_of("ck", 1), crc32c(value));
  EXPECT_EQ(*cache.get("ck", 1), value);
  EXPECT_EQ(cache.stats().corrupt_drops, 0u);

  // At-rest rot: flip one bit under the stored stamp. The next serve must
  // answer a miss (never the corrupt bytes), count the drop, and unlink the
  // item so later gets are ordinary misses counted only once.
  ASSERT_TRUE(cache.corrupt_value_for_test("ck", 13));
  EXPECT_FALSE(cache.get("ck", 2).has_value());
  EXPECT_EQ(cache.stats().corrupt_drops, 1u);
  EXPECT_FALSE(cache.get("ck", 3).has_value());
  EXPECT_EQ(cache.stats().corrupt_drops, 1u);

  // A fresh write under the same key serves again.
  cache.set("ck", value, 4, /*charge=*/0, /*flags=*/0, crc32c(value));
  EXPECT_EQ(*cache.get("ck", 5), value);
}

TEST(CacheServer, UnstampedItemsAreNotVerified) {
  CacheServer cache(small_config());
  cache.set("legacy", "no-stamp-here", 0);
  ASSERT_TRUE(cache.corrupt_value_for_test("legacy", 5));
  // No stamp means no way to tell rot from a legitimate value: the item
  // keeps serving (stock memcached behavior) and nothing is counted.
  EXPECT_TRUE(cache.get("legacy", 1).has_value());
  EXPECT_EQ(cache.stats().corrupt_drops, 0u);
  EXPECT_FALSE(cache.checksum_of("legacy", 1).has_value());
}

}  // namespace
}  // namespace proteus::cache
