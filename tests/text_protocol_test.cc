#include "cache/text_protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "common/hash.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace proteus::cache {
namespace {

CacheConfig proto_config() {
  CacheConfig cfg;
  cfg.memory_budget_bytes = 4 << 20;
  cfg.auto_size_digest = false;
  cfg.digest.num_counters = 1 << 14;
  cfg.digest.counter_bits = 4;
  cfg.digest.num_hashes = 4;
  return cfg;
}

struct Rig {
  CacheServer server{proto_config()};
  TextProtocolSession session{server};
  std::string run(std::string_view wire, SimTime now = 0) {
    return session.feed(wire, now);
  }
};

// --- parser ------------------------------------------------------------------

TEST(ParseCommandLine, Get) {
  const TextCommand cmd = parse_command_line("get foo");
  EXPECT_EQ(cmd.op, TextCommand::Op::kGet);
  ASSERT_EQ(cmd.keys.size(), 1u);
  EXPECT_EQ(cmd.keys[0], "foo");
}

TEST(ParseCommandLine, MultiGet) {
  const TextCommand cmd = parse_command_line("get a b c");
  EXPECT_EQ(cmd.op, TextCommand::Op::kGet);
  EXPECT_EQ(cmd.keys.size(), 3u);
}

TEST(ParseCommandLine, GetsAliasesGet) {
  EXPECT_EQ(parse_command_line("gets foo").op, TextCommand::Op::kGet);
}

TEST(ParseCommandLine, Set) {
  const TextCommand cmd = parse_command_line("set foo 13 0 5");
  EXPECT_EQ(cmd.op, TextCommand::Op::kSet);
  EXPECT_EQ(cmd.keys[0], "foo");
  EXPECT_EQ(cmd.flags, 13u);
  EXPECT_EQ(cmd.bytes, 5u);
  EXPECT_FALSE(cmd.noreply);
}

TEST(ParseCommandLine, SetNoreply) {
  const TextCommand cmd = parse_command_line("set foo 0 0 5 noreply");
  EXPECT_EQ(cmd.op, TextCommand::Op::kSet);
  EXPECT_TRUE(cmd.noreply);
}

TEST(ParseCommandLine, RejectsMalformed) {
  EXPECT_EQ(parse_command_line("").op, TextCommand::Op::kInvalid);
  EXPECT_EQ(parse_command_line("bogus foo").op, TextCommand::Op::kInvalid);
  EXPECT_EQ(parse_command_line("get").op, TextCommand::Op::kInvalid);
  EXPECT_EQ(parse_command_line("set foo 0 0").op, TextCommand::Op::kInvalid);
  EXPECT_EQ(parse_command_line("set foo 0 0 abc").op, TextCommand::Op::kInvalid);
  EXPECT_EQ(parse_command_line("incr foo").op, TextCommand::Op::kInvalid);
  EXPECT_EQ(parse_command_line("stats a b").op, TextCommand::Op::kInvalid);
}

TEST(ParseCommandLine, StatsTakesOneOptionalArg) {
  EXPECT_EQ(parse_command_line("stats").op, TextCommand::Op::kStats);
  EXPECT_TRUE(parse_command_line("stats").stats_arg.empty());
  const TextCommand cmd = parse_command_line("stats reset");
  EXPECT_EQ(cmd.op, TextCommand::Op::kStats);
  EXPECT_EQ(cmd.stats_arg, "reset");
}

TEST(ParseCommandLine, RejectsOversizedAndControlKeys) {
  const std::string big(251, 'k');
  EXPECT_EQ(parse_command_line("get " + big).op, TextCommand::Op::kInvalid);
  EXPECT_EQ(parse_command_line(std::string("get a\tb")).op,
            TextCommand::Op::kInvalid);
  // Exactly 250 bytes is fine.
  const std::string ok(250, 'k');
  EXPECT_EQ(parse_command_line("get " + ok).op, TextCommand::Op::kGet);
}

TEST(ParseCommandLine, Delete) {
  EXPECT_EQ(parse_command_line("delete foo").op, TextCommand::Op::kDelete);
  EXPECT_TRUE(parse_command_line("delete foo noreply").noreply);
}

TEST(ParseCommandLine, IncrDecrTouchFlush) {
  EXPECT_EQ(parse_command_line("incr c 5").op, TextCommand::Op::kIncr);
  EXPECT_EQ(parse_command_line("incr c 5").delta, 5u);
  EXPECT_EQ(parse_command_line("decr c 2").op, TextCommand::Op::kDecr);
  EXPECT_EQ(parse_command_line("touch k 30").op, TextCommand::Op::kTouch);
  EXPECT_EQ(parse_command_line("flush_all").op, TextCommand::Op::kFlushAll);
}

// --- session round trips -------------------------------------------------------

TEST(TextProtocol, SetThenGet) {
  Rig rig;
  EXPECT_EQ(rig.run("set foo 7 0 5\r\nhello\r\n"), "STORED\r\n");
  EXPECT_EQ(rig.run("get foo\r\n"), "VALUE foo 7 5\r\nhello\r\nEND\r\n");
}

TEST(TextProtocol, GetMissReturnsBareEnd) {
  Rig rig;
  EXPECT_EQ(rig.run("get nothing\r\n"), "END\r\n");
}

TEST(TextProtocol, MultiGetSkipsMisses) {
  Rig rig;
  rig.run("set a 0 0 1\r\nx\r\n");
  rig.run("set c 0 0 1\r\ny\r\n");
  EXPECT_EQ(rig.run("get a b c\r\n"),
            "VALUE a 0 1\r\nx\r\nVALUE c 0 1\r\ny\r\nEND\r\n");
}

TEST(TextProtocol, SegmentedInputAcrossFeeds) {
  // Commands split at arbitrary byte boundaries (TCP segmentation).
  Rig rig;
  std::string out;
  out += rig.run("se");
  out += rig.run("t foo 0 0 5\r\nhe");
  out += rig.run("llo\r\nget fo");
  out += rig.run("o\r\n");
  EXPECT_EQ(out, "STORED\r\nVALUE foo 0 5\r\nhello\r\nEND\r\n");
}

TEST(TextProtocol, BinarySafePayload) {
  Rig rig;
  std::string payload = "a\r\nb\0c";
  payload.resize(6);  // include the NUL
  std::string wire = "set bin 0 0 6\r\n";
  wire += payload;
  wire += "\r\n";
  EXPECT_EQ(rig.run(wire), "STORED\r\n");
  const std::string reply = rig.run("get bin\r\n");
  EXPECT_EQ(reply, std::string("VALUE bin 0 6\r\n") + payload + "\r\nEND\r\n");
}

TEST(TextProtocol, AddAndReplaceSemantics) {
  Rig rig;
  EXPECT_EQ(rig.run("replace foo 0 0 1\r\nx\r\n"), "NOT_STORED\r\n");
  EXPECT_EQ(rig.run("add foo 0 0 1\r\nx\r\n"), "STORED\r\n");
  EXPECT_EQ(rig.run("add foo 0 0 1\r\ny\r\n"), "NOT_STORED\r\n");
  EXPECT_EQ(rig.run("replace foo 0 0 1\r\nz\r\n"), "STORED\r\n");
  EXPECT_EQ(rig.run("get foo\r\n"), "VALUE foo 0 1\r\nz\r\nEND\r\n");
}

TEST(TextProtocol, DeleteSemantics) {
  Rig rig;
  rig.run("set foo 0 0 1\r\nx\r\n");
  EXPECT_EQ(rig.run("delete foo\r\n"), "DELETED\r\n");
  EXPECT_EQ(rig.run("delete foo\r\n"), "NOT_FOUND\r\n");
}

TEST(TextProtocol, NoreplySuppressesResponses) {
  Rig rig;
  EXPECT_EQ(rig.run("set foo 0 0 1 noreply\r\nx\r\ndelete foo noreply\r\n"),
            "");
  EXPECT_EQ(rig.run("get foo\r\n"), "END\r\n");
}

TEST(TextProtocol, IncrDecr) {
  Rig rig;
  rig.run("set c 0 0 2\r\n10\r\n");
  EXPECT_EQ(rig.run("incr c 5\r\n"), "15\r\n");
  EXPECT_EQ(rig.run("decr c 20\r\n"), "0\r\n");  // clamps at zero
  EXPECT_EQ(rig.run("incr missing 1\r\n"), "NOT_FOUND\r\n");
  rig.run("set s 0 0 3\r\nabc\r\n");
  EXPECT_EQ(rig.run("incr s 1\r\n"),
            "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n");
}

TEST(TextProtocol, TouchRefreshesHotness) {
  CacheConfig cfg = proto_config();
  cfg.item_ttl = 10 * kSecond;
  CacheServer server(cfg);
  TextProtocolSession session(server);
  session.feed("set k 0 0 1\r\nx\r\n", 0);
  EXPECT_EQ(session.feed("touch k 0\r\n", 8 * kSecond), "TOUCHED\r\n");
  // Still alive at t=16s only because the touch refreshed it.
  EXPECT_EQ(session.feed("get k\r\n", 16 * kSecond),
            "VALUE k 0 1\r\nx\r\nEND\r\n");
  EXPECT_EQ(session.feed("touch k 0\r\n", 60 * kSecond), "NOT_FOUND\r\n");
}

TEST(TextProtocol, FlushAll) {
  Rig rig;
  rig.run("set a 0 0 1\r\nx\r\n");
  EXPECT_EQ(rig.run("flush_all\r\n"), "OK\r\n");
  EXPECT_EQ(rig.run("get a\r\n"), "END\r\n");
}

TEST(TextProtocol, StatsReportCounters) {
  Rig rig;
  rig.run("set a 0 0 1\r\nx\r\n");
  rig.run("get a\r\nget b\r\n");
  const std::string stats = rig.run("stats\r\n");
  EXPECT_NE(stats.find("STAT cmd_get 2\r\n"), std::string::npos);
  EXPECT_NE(stats.find("STAT get_hits 1\r\n"), std::string::npos);
  EXPECT_NE(stats.find("STAT get_misses 1\r\n"), std::string::npos);
  EXPECT_NE(stats.find("STAT curr_items 1\r\n"), std::string::npos);
  EXPECT_NE(stats.find("END\r\n"), std::string::npos);
}

TEST(TextProtocol, StatsKeySetAndFormat) {
  // memcached-parity checks of handle_stats(): every key present exactly
  // once, every line "STAT <name> <decimal>\r\n", END-terminated.
  Rig rig;
  rig.run("set a 0 0 1\r\nx\r\n");
  rig.run("get a\r\n");
  const std::string stats = rig.run("stats\r\n");
  for (const char* name :
       {"cmd_get", "get_hits", "get_misses", "cmd_set", "delete_hits",
        "evictions", "expired_unfetched", "curr_items", "bytes",
        "limit_maxbytes", "digest_counters", "digest_bytes"}) {
    const std::string line = std::string("STAT ") + name + ' ';
    const std::size_t first = stats.find(line);
    EXPECT_NE(first, std::string::npos) << name;
    EXPECT_EQ(stats.find(line, first + 1), std::string::npos) << name;
  }
  // Every non-END line is STAT-prefixed and CRLF-terminated.
  std::size_t pos = 0;
  while (pos < stats.size()) {
    const std::size_t eol = stats.find("\r\n", pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = stats.substr(pos, eol - pos);
    if (line != "END") {
      EXPECT_EQ(line.rfind("STAT ", 0), 0u) << line;
      EXPECT_NE(line.find_last_of("0123456789"), std::string::npos) << line;
    }
    pos = eol + 2;
  }
  EXPECT_EQ(stats.substr(stats.size() - 5), "END\r\n");
}

TEST(TextProtocol, StatsResetZeroesCounters) {
  Rig rig;
  rig.run("set a 0 0 1\r\nx\r\n");
  rig.run("get a\r\nget b\r\n");
  EXPECT_EQ(rig.run("stats reset\r\n"), "RESET\r\n");
  const std::string stats = rig.run("stats\r\n");
  // Command counters are zeroed; occupancy (curr_items/bytes) is not.
  EXPECT_NE(stats.find("STAT cmd_get 0\r\n"), std::string::npos);
  EXPECT_NE(stats.find("STAT get_hits 0\r\n"), std::string::npos);
  EXPECT_NE(stats.find("STAT cmd_set 0\r\n"), std::string::npos);
  EXPECT_NE(stats.find("STAT curr_items 1\r\n"), std::string::npos);
}

TEST(TextProtocol, StatsProteusRendersRegistry) {
  CacheServer server{proto_config()};
  obs::MetricsRegistry registry;
  registry.counter("demo_total", "a counter")->inc(7);
  TextProtocolSession session(server, &registry);
  const std::string reply = session.feed("stats proteus\r\n", 0);
  EXPECT_NE(reply.find("STAT demo_total 7\r\n"), std::string::npos);
  EXPECT_EQ(reply.substr(reply.size() - 5), "END\r\n");

  // Without a registry the extension degrades to an empty reply.
  TextProtocolSession bare(server);
  EXPECT_EQ(bare.feed("stats proteus\r\n", 0), "END\r\n");
}

TEST(TextProtocol, StatsUnknownArgIsError) {
  Rig rig;
  EXPECT_EQ(rig.run("stats bogus\r\n"), "ERROR\r\n");
}

TEST(TextProtocol, VersionAndQuit) {
  Rig rig;
  EXPECT_EQ(rig.run("version\r\n"), "VERSION proteus-1.0\r\n");
  EXPECT_EQ(rig.run("quit\r\n"), "");
  EXPECT_TRUE(rig.session.closed());
  EXPECT_EQ(rig.run("get foo\r\n"), "");  // input after quit is ignored
}

TEST(TextProtocol, UnknownCommandYieldsError) {
  Rig rig;
  EXPECT_EQ(rig.run("frobnicate\r\n"), "ERROR\r\n");
}

TEST(TextProtocol, BadDataChunkTerminatorRejected) {
  Rig rig;
  // Payload not followed by CRLF.
  EXPECT_EQ(rig.run("set foo 0 0 2\r\nxyz\r\n"),
            "CLIENT_ERROR bad data chunk\r\n");
  EXPECT_EQ(rig.run("get foo\r\n"), "END\r\n");
}

// --- the paper's digest protocol through an unmodified client path ----------

TEST(TextProtocol, DigestSnapshotViaReservedKeys) {
  Rig rig;
  for (int i = 0; i < 50; ++i) {
    rig.run("set page:" + std::to_string(i) + " 0 0 1\r\nx\r\n");
  }
  const std::string ok = rig.run("get SET_BLOOM_FILTER\r\n");
  EXPECT_NE(ok.find("VALUE SET_BLOOM_FILTER 0 2\r\nOK\r\n"), std::string::npos);

  const std::string reply = rig.run("get BLOOM_FILTER\r\n");
  // Parse out the announced byte count and extract the blob.
  const std::string header_prefix = "VALUE BLOOM_FILTER 0 ";
  ASSERT_EQ(reply.rfind(header_prefix, 0), 0u) << reply.substr(0, 40);
  const std::size_t eol = reply.find("\r\n");
  const std::size_t size = std::stoul(reply.substr(header_prefix.size(),
                                                   eol - header_prefix.size()));
  const std::string blob = reply.substr(eol + 2, size);
  ASSERT_EQ(blob.size(), size);

  const bloom::BloomFilter digest = decode_digest(blob);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(digest.maybe_contains("page:" + std::to_string(i))) << i;
  }
  EXPECT_FALSE(digest.maybe_contains("page:9999"));
}

TEST(TextProtocol, ReservedKeysAreReadOnly) {
  Rig rig;
  EXPECT_EQ(rig.run("set SET_BLOOM_FILTER 0 0 1\r\nx\r\n"),
            "CLIENT_ERROR reserved key\r\n");
  EXPECT_EQ(rig.run("set BLOOM_FILTER 0 0 1\r\nx\r\n"),
            "CLIENT_ERROR reserved key\r\n");
}

TEST(TextProtocol, FlagsSurviveEvictionBoundary) {
  // Flags live in the item, so an evicted key loses them with the item.
  CacheConfig cfg = proto_config();
  cfg.memory_budget_bytes = 400;
  cfg.per_item_overhead = 0;
  CacheServer server(cfg);
  TextProtocolSession session(server);
  session.feed("set a 11 0 300\r\n" + std::string(300, 'x') + "\r\n", 0);
  session.feed("set b 22 0 300\r\n" + std::string(300, 'y') + "\r\n", 0);
  EXPECT_EQ(session.feed("get a\r\n", 0), "END\r\n");  // evicted
  const std::string reply = session.feed("get b\r\n", 0);
  EXPECT_EQ(reply.rfind("VALUE b 22 300\r\n", 0), 0u);
}

// --- payload integrity over the text wire ------------------------------------

TEST(TextProtocol, AtRestCorruptionServesMissAndCountsTheDrop) {
  Rig rig;
  const std::string value = "wire-visible-integrity";
  const std::string crc_tok = obs::encode_checksum_token(crc32c(value));
  ASSERT_EQ(rig.run("set ck 0 0 " + std::to_string(value.size()) + " " +
                    crc_tok + "\r\n" + value + "\r\n"),
            "STORED\r\n");
  EXPECT_EQ(rig.run("get ck " + crc_tok + "\r\n"),
            "VALUE ck 0 " + std::to_string(value.size()) + " " + crc_tok +
                "\r\n" + value + "\r\nEND\r\n");

  // Rot the stored bytes under the stamp: the wire answer is a plain miss
  // (END, no VALUE) — corrupt bytes never make it onto the socket — and the
  // stats line records exactly one drop.
  ASSERT_TRUE(rig.server.corrupt_value_for_test("ck", 42));
  EXPECT_EQ(rig.run("get ck\r\n"), "END\r\n");
  const std::string stats = rig.run("stats\r\n");
  EXPECT_NE(stats.find("STAT corrupt_drops 1\r\n"), std::string::npos);
  EXPECT_NE(stats.find("STAT corrupt_set_rejects 0\r\n"), std::string::npos);
}

TEST(TextProtocol, BadChecksumSetCountsTheReject) {
  Rig rig;
  const std::string value = "damaged-in-flight";
  const std::string wrong = obs::encode_checksum_token(crc32c(value) ^ 1u);
  EXPECT_EQ(rig.run("set ck 0 0 " + std::to_string(value.size()) + " " +
                    wrong + "\r\n" + value + "\r\n"),
            "SERVER_ERROR bad-checksum\r\n");
  EXPECT_EQ(rig.run("get ck\r\n"), "END\r\n");
  const std::string stats = rig.run("stats\r\n");
  EXPECT_NE(stats.find("STAT corrupt_set_rejects 1\r\n"), std::string::npos);
}

}  // namespace
}  // namespace proteus::cache
