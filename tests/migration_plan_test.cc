#include "hashring/migration_plan.h"

#include <gtest/gtest.h>

namespace proteus::ring {
namespace {

TEST(MigrationPlan, ShrinkByOneFlowsOnlyFromRemovedServer) {
  ProteusPlacement placement(10);
  const TransitionPlan plan = plan_transition(placement, 10, 9, 1'000'000);
  EXPECT_EQ(plan.n_from, 10);
  EXPECT_EQ(plan.n_to, 9);
  for (const MigrationFlow& f : plan.flows) {
    EXPECT_EQ(f.from, 9) << "only the turned-off server may lose data";
    EXPECT_LT(f.to, 9);
  }
  EXPECT_NEAR(plan.total_fraction, 1.0 / 10, 1e-9);
}

TEST(MigrationPlan, ShrinkSpreadsEvenlyOverSurvivors) {
  // Balance Condition: each survivor absorbs K/(n(n-1)).
  ProteusPlacement placement(10);
  const TransitionPlan plan = plan_transition(placement, 10, 9, 0);
  for (int s = 0; s < 9; ++s) {
    EXPECT_NEAR(plan.inbound_fraction(s), 1.0 / 90, 1e-9) << s;
  }
  EXPECT_NEAR(plan.outbound_fraction(9), 1.0 / 10, 1e-9);
}

TEST(MigrationPlan, GrowFlowsOnlyIntoNewServers) {
  ProteusPlacement placement(10);
  const TransitionPlan plan = plan_transition(placement, 4, 7, 1'000'000);
  for (const MigrationFlow& f : plan.flows) {
    EXPECT_LT(f.from, 4);
    EXPECT_GE(f.to, 4);
    EXPECT_LT(f.to, 7);
  }
  EXPECT_NEAR(plan.total_fraction, 3.0 / 7, 1e-9);  // |7-4|/max(7,4)
  for (int s = 4; s < 7; ++s) {
    EXPECT_NEAR(plan.inbound_fraction(s), 1.0 / 7, 1e-9) << s;
  }
}

TEST(MigrationPlan, ByteEstimatesScaleWithFractions) {
  ProteusPlacement placement(8);
  const std::uint64_t hot = 64ull << 30;  // 64 GB of hot data
  const TransitionPlan plan = plan_transition(placement, 8, 7, hot);
  EXPECT_NEAR(static_cast<double>(plan.total_bytes),
              static_cast<double>(hot) / 8.0, 1e-3 * static_cast<double>(hot));
  std::uint64_t flow_sum = 0;
  for (const MigrationFlow& f : plan.flows) flow_sum += f.estimated_bytes;
  EXPECT_NEAR(static_cast<double>(flow_sum),
              static_cast<double>(plan.total_bytes),
              static_cast<double>(plan.flows.size()));  // rounding only
}

TEST(MigrationPlan, NoopTransitionIsEmpty) {
  ProteusPlacement placement(6);
  const TransitionPlan plan = plan_transition(placement, 4, 4, 1000);
  EXPECT_TRUE(plan.flows.empty());
  EXPECT_EQ(plan.total_fraction, 0.0);
  EXPECT_EQ(plan.total_bytes, 0u);
}

TEST(MigrationPlan, MatchesPlacementMigrationFraction) {
  ProteusPlacement placement(12);
  for (int a : {1, 3, 7, 12}) {
    for (int b : {2, 6, 11}) {
      const TransitionPlan plan = plan_transition(placement, a, b, 0);
      EXPECT_NEAR(plan.total_fraction, placement.migration_fraction(a, b),
                  1e-12)
          << a << "->" << b;
    }
  }
}

TEST(MigrationPlan, FlowsAreAggregatedPerPair) {
  ProteusPlacement placement(10);
  const TransitionPlan plan = plan_transition(placement, 10, 5, 0);
  for (std::size_t i = 0; i < plan.flows.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.flows.size(); ++j) {
      EXPECT_FALSE(plan.flows[i].from == plan.flows[j].from &&
                   plan.flows[i].to == plan.flows[j].to);
    }
  }
}

}  // namespace
}  // namespace proteus::ring
